//! Row-major dense matrix.
// lint:allow-file(slice-index): the storage type itself — `Index` impls
// and row/column kernels own the bounds checks the rest of the workspace
// relies on, with dimensions validated at construction.

use crate::{LinalgError, Result};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// Sized for the problems this workspace solves (fitting Jacobians, Newton
/// systems, simplex bases): tens to a few thousand rows/columns. Storage is a
/// single `Vec<f64>` so rows are contiguous and iteration is cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics (debug) if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vecops::dot(self.row(i), x);
        }
        y
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if !crate::approx::exactly_zero(xi) {
                for (yj, aij) in y.iter_mut().zip(self.row(i)) {
                    *yj += aij * xi;
                }
            }
        }
        y
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, other.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if crate::approx::exactly_zero(aik) {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (symmetric positive semidefinite).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..n {
                let rki = row[i];
                if crate::approx::exactly_zero(rki) {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += rki * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Adds `lambda` to every diagonal entry in place (ridge shift).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.cols),
                got: (other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(i3.matvec(&x), x);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_transposed_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.5, -0.5];
        let lhs = a.matvec_transposed(&x);
        let rhs = a.transpose().matvec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(3.0);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 3.0]]));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.inf_norm() - 7.0).abs() < 1e-12);
        assert!((a.max_abs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }
}
