//! BLAS-1 style vector helpers shared across the optimization stack.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean distance between two points.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Elementwise clamp of `x` into `[lo, hi]` (per-component bounds).
#[inline]
pub fn clamp_into_bounds(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for ((xi, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        *xi = xi.clamp(l, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 2.0];
        assert!((dot(&a, &a) - 9.0).abs() < 1e-15);
        assert!((norm2(&a) - 3.0).abs() < 1e-15);
        assert!((norm_inf(&[-5.0, 2.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn dist2_symmetric() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((dist2(&a, &b) - 5.0).abs() < 1e-15);
        assert!((dist2(&b, &a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn clamp_respects_bounds() {
        let mut x = [-1.0, 0.5, 9.0];
        clamp_into_bounds(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, [0.0, 0.5, 1.0]);
    }
}
