//! The workspace's tolerance vocabulary.
//!
//! `hslb-lint`'s `float-eq` rule bans raw `==`/`!=` between floats outside
//! this module: every comparison the solvers make should either go through
//! a helper here (so the tolerance policy is named and auditable) or carry
//! a written justification. The same goes for float→int casts: the
//! `*_to_*` helpers below state their rounding intent in their name.
//!
//! Two deliberately different regimes live here:
//!
//! - **Approximate** comparisons ([`approx_eq`], [`fuzzy_ceil`],
//!   [`fuzzy_floor`]) absorb float noise from upstream arithmetic. Use them
//!   whenever the operands were *computed* (residuals, bounds from
//!   divisions, objective values).
//! - **Exact** comparisons ([`exactly_zero`]) are for *structural* values
//!   that were stored, not computed — a sparse coefficient that is 0.0
//!   because nobody set it. Skipping work on exact zeros is a semantics-
//!   preserving fast path; widening it to a tolerance would silently drop
//!   small real coefficients.

/// Default relative tolerance for [`approx_eq`] when callers have no
/// problem-specific scale: about 1000 ulps at magnitude 1.
pub const DEFAULT_REL_TOL: f64 = 1e-12;

/// Mixed absolute/relative equality: `|a − b| ≤ tol · max(1, |a|, |b|)`.
///
/// Absolute near zero (so residuals around 0 compare sanely), relative for
/// large magnitudes (so makespans in the 1e6 range are not "equal" to
/// everything within 1e-12 absolute).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

/// Exact zero test for *structural* values (stored coefficients, explicit
/// sentinels) — NOT for computed quantities. The point of routing `x == 0.0`
/// through a named helper is that the exactness is declared, not accidental.
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0
}

/// Ceil that forgives downward float noise: `fuzzy_ceil(4.999999999999999)`
/// is 5, not 5-from-ceil-of-noise. Use when the argument came out of a
/// division or scaling whose exact value may be an integer.
///
/// `tol` is relative to magnitude (plus an absolute floor of the same size).
pub fn fuzzy_ceil(x: f64, tol: f64) -> f64 {
    (x - tol * (1.0 + x.abs())).ceil()
}

/// Floor that forgives upward float noise — the dual of [`fuzzy_ceil`]:
/// `fuzzy_floor(5.000000000000001)` is 5.
pub fn fuzzy_floor(x: f64, tol: f64) -> f64 {
    (x + tol * (1.0 + x.abs())).floor()
}

/// Default noise tolerance for [`fuzzy_ceil`]/[`fuzzy_floor`] on bound
/// arithmetic: generous against accumulated division noise, far below the
/// unit spacing of the integer lattices being snapped to.
pub const SNAP_TOL: f64 = 1e-9;

/// `x.ceil()` as an `i64`, saturating — the name states the rounding.
pub fn ceil_to_i64(x: f64) -> i64 {
    x.ceil() as i64
}

/// `x.floor()` as an `i64`, saturating.
pub fn floor_to_i64(x: f64) -> i64 {
    x.floor() as i64
}

/// `x.round()` as a `u64`, saturating (negative inputs clamp to 0).
pub fn round_to_u64(x: f64) -> u64 {
    x.round() as u64
}

/// `x.round()` as a `u32`, saturating (negative inputs clamp to 0).
pub fn round_to_u32(x: f64) -> u32 {
    x.round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_mixes_absolute_and_relative() {
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(!approx_eq(0.0, 1e-11, 1e-12));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-13), 1e-12));
        assert!(!approx_eq(1e9, 1e9 * (1.0 + 1e-11), 1e-12));
    }

    #[test]
    fn exactly_zero_is_exact() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(1e-300));
    }

    #[test]
    fn fuzzy_snaps_forgive_noise_in_one_direction_only() {
        // 3.3 / 1.1 rounds below 3 in f64; plain floor loses the 3.
        let noisy_down = 3.3_f64 / 1.1_f64;
        assert!(noisy_down < 3.0);
        assert_eq!(fuzzy_floor(noisy_down, SNAP_TOL), 3.0);
        // 4.9 / 0.7 rounds above 7; plain ceil would jump to 8.
        let noisy_up = 4.9_f64 / 0.7_f64;
        assert!(noisy_up > 7.0);
        assert_eq!(fuzzy_ceil(noisy_up, SNAP_TOL), 7.0);
        // Genuine fractional values still snap the strict way.
        assert_eq!(fuzzy_ceil(4.5, SNAP_TOL), 5.0);
        assert_eq!(fuzzy_floor(4.5, SNAP_TOL), 4.0);
    }

    #[test]
    fn named_casts_round_as_advertised() {
        assert_eq!(ceil_to_i64(2.1), 3);
        assert_eq!(floor_to_i64(2.9), 2);
        assert_eq!(round_to_u64(2.5), 3);
        assert_eq!(round_to_u32(-1.0), 0); // saturates
    }
}
