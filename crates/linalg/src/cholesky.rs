//! Cholesky factorization of symmetric positive-definite matrices.
// lint:allow-file(slice-index): dense factorization kernel — indices run
// over the matrix dimensions checked at entry; iterator forms would
// obscure the triangular recurrences.

use crate::{LinalgError, Matrix, Result};

/// Smallest regularization shift, relative to the largest diagonal entry:
/// the minimal ridge that reliably rescues a semidefinite Hessian model
/// without visibly perturbing the Newton step.
const MIN_SHIFT_REL: f64 = 1e-12;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// The trust-region (Levenberg–Marquardt) and log-barrier Newton solvers both
/// solve SPD systems; when the Hessian model is only positive *semi*definite
/// they retry through [`Cholesky::new_regularized`], which shifts the diagonal
/// until the factorization succeeds.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { row: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + lambda I`, geometrically growing `lambda` from
    /// `initial_shift` until the shifted matrix is positive definite.
    ///
    /// Returns the factorization together with the shift that was actually
    /// applied (`0.0` when `a` itself was SPD). Gives up after enough growth
    /// to dominate the largest diagonal entry.
    pub fn new_regularized(a: &Matrix, initial_shift: f64) -> Result<(Self, f64)> {
        if let Ok(ch) = Cholesky::new(a) {
            return Ok((ch, 0.0));
        }
        // No diagonal shift can rescue a matrix with non-finite entries, and
        // an infinite diagonal would make `limit` infinite below — the growth
        // loop would then spin forever once `shift` saturates at infinity
        // (`inf <= inf` never exits). Fail fast instead.
        if !a.as_slice().iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NotPositiveDefinite { row: 0 });
        }
        let max_diag = (0..a.rows())
            .map(|i| a[(i, i)].abs())
            .fold(f64::EPSILON, f64::max);
        let mut shift = initial_shift.max(MIN_SHIFT_REL * max_diag);
        let limit = 1e8 * max_diag.max(1.0);
        while shift <= limit && shift.is_finite() {
            let mut shifted = a.clone();
            shifted.add_diagonal(shift);
            if let Ok(ch) = Cholesky::new(&shifted) {
                return Ok((ch, shift));
            }
            shift *= 10.0;
        }
        Err(LinalgError::NotPositiveDefinite { row: 0 })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        debug_assert_eq!(b.len(), n);
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }

    /// log(det A) = 2 Σ log L_ii — cheap once factorized.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a full-rank B is SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = ch.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn regularized_recovers_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let (ch, shift) = Cholesky::new_regularized(&a, 1e-8).unwrap();
        assert!(shift > 0.0);
        // The shifted system must be solvable and produce finite values.
        let x = ch.solve(&[1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regularized_spd_needs_no_shift() {
        let a = spd3();
        let (_, shift) = Cholesky::new_regularized(&a, 1e-8).unwrap();
        assert_eq!(shift, 0.0);
    }

    #[test]
    fn regularized_rejects_non_finite_instead_of_spinning() {
        // An infinite diagonal used to drive `limit` to infinity, and the
        // shift-growth loop then never exited once the shift saturated
        // (found by the wire fuzzer: a byte flip produced a perf-model
        // constant of ~2e17 whose barrier Hessian overflowed). The call
        // must return an error, and return it promptly.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let a = Matrix::from_rows(&[&[bad, 0.0], &[0.0, -1.0]]);
            assert!(Cholesky::new_regularized(&a, 1e-8).is_err());
        }
        // Non-finite off-diagonals are equally unrescuable.
        let a = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, -1.0]]);
        assert!(Cholesky::new_regularized(&a, 1e-8).is_err());
    }

    #[test]
    fn log_det_matches_known() {
        // det(diag(2, 3)) = 6.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 6.0_f64.ln()).abs() < 1e-12);
    }
}
