//! Householder QR factorization and least-squares solves.
// lint:allow-file(slice-index): dense factorization kernel — indices run
// over the matrix dimensions checked at entry; iterator forms would
// obscure the Householder updates.

use crate::{LinalgError, Matrix, Result};

/// Diagonal entries of `R` below this are treated as rank-deficient: well
/// below any pivot a conditioned least-squares subproblem produces, well
/// above denormal noise.
const RANK_TOL: f64 = 1e-13;

/// Householder QR of an `m x n` matrix with `m >= n`.
///
/// `Q` is kept in factored (reflector) form; this is all the Levenberg–
/// Marquardt inner solve needs. The least-squares solution of `min ||Ax - b||`
/// is obtained by applying the reflectors to `b` and back-substituting with
/// `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Reflectors below the diagonal, `R` on and above it.
    packed: Matrix,
    /// Scalar `tau` of each Householder reflector.
    taus: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires `rows >= cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, n),
                got: (m, n),
            });
        }
        let mut r = a.clone();
        let mut taus = Vec::with_capacity(n);
        for k in 0..n {
            // Build the reflector annihilating column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if crate::approx::exactly_zero(norm) {
                taus.push(0.0);
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = r[(k, k)] - alpha;
            // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in (k + 1)..m {
                vnorm2 += r[(i, k)] * r[(i, k)];
            }
            if crate::approx::exactly_zero(vnorm2) {
                taus.push(0.0);
                continue;
            }
            let tau = 2.0 * v0 * v0 / vnorm2;
            // Store normalized reflector tail in the column.
            for i in (k + 1)..m {
                r[(i, k)] /= v0;
            }
            r[(k, k)] = alpha;
            taus.push(tau);
            // Apply reflector to remaining columns: A <- (I - tau v vᵀ) A.
            for j in (k + 1)..n {
                let mut s = r[(k, j)];
                for i in (k + 1)..m {
                    s += r[(i, k)] * r[(i, j)];
                }
                s *= tau;
                r[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = r[(i, k)];
                    r[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { packed: r, taus })
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        debug_assert_eq!(b.len(), m);
        for k in 0..n {
            let tau = self.taus[k];
            if crate::approx::exactly_zero(tau) {
                continue;
            }
            let mut s = b[k];
            for (i, &bi) in b.iter().enumerate().skip(k + 1) {
                s += self.packed[(i, k)] * bi;
            }
            s *= tau;
            b[k] -= s;
            for (i, bi) in b.iter_mut().enumerate().skip(k + 1) {
                *bi -= s * self.packed[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ||A x - b||_2`.
    ///
    /// Fails with [`LinalgError::Singular`] if `R` has a (near-)zero diagonal,
    /// i.e. `A` is rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.packed.cols();
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.packed[(i, j)] * xj;
            }
            let rii = self.packed[(i, i)];
            if rii.abs() < RANK_TOL {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Absolute values of the diagonal of `R` (singular-value proxies used
    /// for rank diagnostics in the fitting code).
    pub fn r_diag_abs(&self) -> Vec<f64> {
        (0..self.packed.cols())
            .map(|i| self.packed[(i, i)].abs())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.0, -1.0];
        let b = a.matvec(&x_true);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_regression() {
        // Fit y = 2t + 1 through noiseless samples: LSQ must recover exactly.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 * t + 1.0).collect();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_orthogonal() {
        // Residual of the LSQ solution must be orthogonal to the column space.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 0.5, 3.0, 2.0];
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = a.matvec_transposed(&r);
        for v in atr {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn rejects_underdetermined() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
    }
}
