//! AMD-style fill-reducing ordering: minimum degree with a dense-node
//! cutoff on the symmetrized pattern.
// lint:allow-file(slice-index): graph-elimination kernel — node ids index
// adjacency arrays sized to the graph at entry; iterator forms would
// obscure the clique-merge walks.

use super::csc::CscMatrix;

/// Nodes whose degree exceeds `DENSE_NODE_BASE + DENSE_NODE_SCALE·√n` are
/// ordered last without clique formation: merging their neighborhoods is
/// the quadratic blow-up mode of minimum degree, and deferring them is the
/// standard AMD mitigation.
const DENSE_NODE_BASE: usize = 16;
const DENSE_NODE_SCALE: f64 = 10.0;

/// Adjacency lists of the symmetrized pattern of `a` (pattern of `A + Aᵀ`
/// with the diagonal removed) — the elimination graph both factorizations
/// order on.
pub fn symmetric_adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.nrows().max(a.ncols());
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..a.ncols() {
        let (rows, _) = a.col(j);
        for &r in rows {
            if r != j {
                adj[r].push(j);
                adj[j].push(r);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Minimum-degree elimination order over symmetric adjacency lists.
///
/// Returns `order` with `order[k]` = the node eliminated `k`-th. Any
/// permutation is *correct* for the factorizations (this is purely a fill
/// heuristic), so the implementation favors simplicity: exact degrees via
/// eager clique merging, a linear min scan per step, and a dense-node
/// cutoff that appends all remaining nodes once the minimum degree itself
/// goes dense.
pub fn min_degree(adjacency: &[Vec<usize>]) -> Vec<usize> {
    let n = adjacency.len();
    let mut adj: Vec<Vec<usize>> = adjacency.to_vec();
    let mut alive = vec![true; n];
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut order = Vec::with_capacity(n);
    let dense_cut = DENSE_NODE_BASE + (DENSE_NODE_SCALE * (n as f64).sqrt()) as usize;

    for _ in 0..n {
        // Exact degree = current adjacency length: lists only ever hold
        // alive nodes (see the merge step below).
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for p in 0..n {
            if alive[p] && adj[p].len() < best_deg {
                best_deg = adj[p].len();
                best = p;
            }
        }
        if best == usize::MAX {
            break;
        }
        if best_deg > dense_cut {
            // Everything left is dense-ish; stop forming cliques and
            // emit the remainder in index order.
            for (p, a) in alive.iter_mut().enumerate() {
                if *a {
                    *a = false;
                    order.push(p);
                }
            }
            break;
        }
        let p = best;
        alive[p] = false;
        order.push(p);
        let nbrs = std::mem::take(&mut adj[p]);
        // Clique merge: each alive neighbor absorbs the eliminated node's
        // neighborhood, keeping lists alive-only and duplicate-free.
        for &v in &nbrs {
            if !alive[v] {
                continue;
            }
            stamp += 1;
            mark[v] = stamp;
            mark[p] = stamp;
            let old = std::mem::take(&mut adj[v]);
            let mut merged = Vec::with_capacity(old.len() + nbrs.len());
            for &u in old.iter().chain(nbrs.iter()) {
                if alive[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    merged.push(u);
                }
            }
            adj[v] = merged;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn order_of(dense: &Matrix) -> Vec<usize> {
        min_degree(&symmetric_adjacency(&CscMatrix::from_dense(dense)))
    }

    #[test]
    fn order_is_a_permutation() {
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        let mut order = order_of(&a);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn arrow_matrix_eliminates_hub_last() {
        // Arrow pattern: node 0 touches everything. Minimum degree must
        // pick the degree-1 spokes first — eliminating the hub first would
        // create a full clique.
        let n = 6;
        let mut a = Matrix::identity(n);
        for i in 1..n {
            a[(0, i)] = 1.0;
            a[(i, 0)] = 1.0;
        }
        let order = order_of(&a);
        let hub_pos = order.iter().position(|&p| p == 0).unwrap();
        // The hub can only reach the front of the queue once enough spokes
        // are gone that its degree ties theirs.
        assert!(hub_pos >= n - 2, "hub eliminated too early: {order:?}");
    }

    #[test]
    fn empty_graph_orders_all_nodes() {
        let order = min_degree(&vec![Vec::new(); 5]);
        assert_eq!(order.len(), 5);
    }
}
