//! Compressed sparse column / row matrix storage.
// lint:allow-file(slice-index): sparse storage kernel — indices are column
// pointers and row ids validated at construction; iterator forms would
// obscure the compressed-layout walks.

use crate::{LinalgError, Matrix, Result};

/// Compressed sparse column matrix.
///
/// Columns are stored contiguously: the entries of column `j` live at
/// `values[col_ptr[j]..col_ptr[j + 1]]` with matching `row_idx`. Row
/// indices within a column are sorted ascending and unique; exact zeros
/// are dropped at construction so `nnz` reflects structural nonzeros.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; exact zeros (including cancelled duplicate
    /// sums) are dropped.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<CscMatrix> {
        for &(r, c, _) in triplets {
            if r >= nrows || c >= ncols {
                return Err(LinalgError::DimensionMismatch {
                    expected: (nrows, ncols),
                    got: (r + 1, c + 1),
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(r, c, v)| (c, r, v)).collect();
        sorted.sort_by_key(|&(c, r, _)| (c, r));
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut i = 0;
        while i < sorted.len() {
            let (c, r, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == c && sorted[i].1 == r {
                v += sorted[i].2;
                i += 1;
            }
            if !crate::approx::exactly_zero(v) {
                row_idx.push(r);
                values.push(v);
                col_ptr[c + 1] += 1;
            }
        }
        for c in 0..ncols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(a: &Matrix) -> CscMatrix {
        let (nrows, ncols) = (a.rows(), a.cols());
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for j in 0..ncols {
            for i in 0..nrows {
                let v = a[(i, j)];
                if !crate::approx::exactly_zero(v) {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = values.len();
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Assembles a square-or-rectangular matrix from per-column sparse
    /// vectors `(row, value)`. Rows within a column need not be sorted;
    /// duplicates are summed.
    pub fn from_columns(nrows: usize, cols: &[Vec<(usize, f64)>]) -> Result<CscMatrix> {
        let mut triplets = Vec::new();
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                triplets.push((r, j, v));
            }
        }
        CscMatrix::from_triplets(nrows, cols.len(), &triplets)
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                m[(self.row_idx[p], j)] = self.values[p];
            }
        }
        m
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array, column-major.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array, column-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array — for callers that rewrite values in a fixed
    /// sparsity pattern (the factorization-reuse contract).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate().take(self.ncols) {
            if crate::approx::exactly_zero(xj) {
                continue;
            }
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[p]] += self.values[p] * xj;
            }
        }
        y
    }

    /// `y = Aᵀ x`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.nrows);
        let mut y = vec![0.0; self.ncols];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                s += self.values[p] * x[self.row_idx[p]];
            }
            *yj = s;
        }
        y
    }

    /// Transposed copy (also the CSC view of the CSR form).
    pub fn transpose(&self) -> CscMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                triplets.push((j, self.row_idx[p], self.values[p]));
            }
        }
        // Pattern is valid by construction; unwrap via expect is avoided.
        match CscMatrix::from_triplets(self.ncols, self.nrows, &triplets) {
            Ok(t) => t,
            Err(_) => CscMatrix::from_dense(&Matrix::zeros(self.ncols, self.nrows)),
        }
    }

    /// Converts to compressed sparse row form.
    pub fn to_csr(&self) -> CsrMatrix {
        let t = self.transpose();
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: t.col_ptr,
            col_idx: t.row_idx,
            values: t.values,
        }
    }
}

/// Compressed sparse row matrix — the transpose-friendly dual of
/// [`CscMatrix`], used where row access dominates (constraint scans).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect()
    }

    /// Converts back to compressed sparse column form.
    pub fn to_csc(&self) -> CscMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                triplets.push((i, self.col_idx[p], self.values[p]));
            }
        }
        match CscMatrix::from_triplets(self.nrows, self.ncols, &triplets) {
            Ok(c) => c,
            Err(_) => CscMatrix::from_dense(&Matrix::zeros(self.nrows, self.ncols)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates_and_drop_zeros() {
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[
                (0, 0, 1.0),
                (0, 0, 2.0),
                (1, 1, 5.0),
                (1, 0, 3.0),
                (1, 0, -3.0),
            ],
        )
        .unwrap();
        assert_eq!(a.nnz(), 2);
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 3.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn out_of_range_triplet_rejected() {
        assert!(CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let s = CscMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(s.matvec(&x), d.matvec(&x));
        let y = [1.0, -1.0];
        assert_eq!(s.matvec_transposed(&y), d.matvec_transposed(&y));
    }

    #[test]
    fn csr_round_trip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[4.0, 5.0], &[0.0, -2.0]]);
        let s = CscMatrix::from_dense(&d);
        let r = s.to_csr();
        assert_eq!(r.nnz(), 4);
        assert_eq!(r.matvec(&[2.0, 1.0]), d.matvec(&[2.0, 1.0]));
        assert_eq!(r.to_csc(), s);
    }
}
