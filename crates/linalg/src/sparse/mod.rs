//! Sparse numerical core: CSC/CSR storage, fill-reducing ordering, and
//! factorizations with a symbolic/numeric split (see DESIGN.md § Sparse
//! core).
//!
//! * [`CscMatrix`] / [`CsrMatrix`] — compressed column/row storage.
//! * [`LuSymbolic`] / [`SparseLu`] — left-looking LU with partial
//!   pivoting; the symbolic column order is computed once per pattern.
//! * [`CholSymbolic`] / [`SparseCholesky`] — up-looking Cholesky over an
//!   elimination tree; the symbolic analysis (ordering, etree, column
//!   counts, value map) is reused across every numeric refactorization.
//! * [`SparseWorkspace`] — the scatter/mark scratch shared by both
//!   factorizations, held by callers (e.g. branch-and-bound scratch
//!   arenas) so hot loops refactorize without reallocating.
//! * [`LinalgBackend`] — the dense/sparse selector threaded through the
//!   LP, NLP and MINLP option structs; dense remains the differential
//!   oracle below the crossover dimension.

pub mod cholesky;
pub mod csc;
pub mod lu;
pub mod ordering;

pub use cholesky::{CholSymbolic, SparseCholesky};
pub use csc::{CscMatrix, CsrMatrix};
pub use lu::{LuSymbolic, SparseLu};

/// Sentinel for "no index" in permutation / tree arrays.
pub(crate) const NONE: usize = usize::MAX;

/// System dimension above which `LinalgBackend::Auto` switches from the
/// dense oracle to the sparse kernels.
///
/// Calibration: every pinned paper-scale workload (E7/E8, the testkit
/// generators, OA masters with their accumulated cuts) stays well under
/// ~70 basis rows / KKT unknowns, while the dense O(m³) refactorization
/// and O(m²) pivot updates only start dominating wall-clock in the few-
/// hundred-row range. 160 keeps every paper instance byte-identical on
/// the dense path and flips netlib-scale instances (m ≥ a few hundred)
/// to sparse where the asymptotic win is unambiguous.
pub const SPARSE_CROSSOVER_DIM: usize = 160;

/// Which linear-algebra kernels a solver should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinalgBackend {
    /// Dense below [`SPARSE_CROSSOVER_DIM`], sparse at or above it.
    #[default]
    Auto,
    /// Always the dense kernels (the differential oracle; `--dense` in
    /// `hslb-cli`).
    Dense,
    /// Always the sparse kernels.
    Sparse,
}

impl LinalgBackend {
    /// Resolves the backend choice for a system of `dim` unknowns.
    pub fn use_sparse(self, dim: usize) -> bool {
        match self {
            LinalgBackend::Auto => dim >= SPARSE_CROSSOVER_DIM,
            LinalgBackend::Dense => false,
            LinalgBackend::Sparse => true,
        }
    }
}

/// Reusable scratch for the sparse factorizations: a dense scatter
/// vector, a stamp-based visited mark, a DFS stack and a pattern/topo
/// buffer. `ensure(n)` grows it to dimension `n`; values in `x` are
/// maintained as all-zero between uses so repeated factorizations never
/// pay a clear.
#[derive(Debug, Clone, Default)]
pub struct SparseWorkspace {
    pub(crate) x: Vec<f64>,
    pub(crate) flag: Vec<u64>,
    pub(crate) stamp: u64,
    pub(crate) stack: Vec<(usize, usize)>,
    pub(crate) topo: Vec<usize>,
}

impl SparseWorkspace {
    pub fn new() -> SparseWorkspace {
        SparseWorkspace::default()
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
            self.flag.resize(n, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_crossover_behaves() {
        assert!(!LinalgBackend::Auto.use_sparse(SPARSE_CROSSOVER_DIM - 1));
        assert!(LinalgBackend::Auto.use_sparse(SPARSE_CROSSOVER_DIM));
        assert!(!LinalgBackend::Dense.use_sparse(100_000));
        assert!(LinalgBackend::Sparse.use_sparse(2));
    }
}
