//! Sparse Cholesky: up-looking numeric factorization under a reusable
//! symbolic analysis (fill-reducing order, elimination tree, column
//! counts, and a value-index map into the analyzed matrix pattern).
// lint:allow-file(slice-index): sparse factorization kernel — indices are
// elimination-tree nodes and compressed-storage offsets validated against
// the matrix dimension at entry; iterator forms would obscure the
// ereach/scatter recurrences.

use super::csc::CscMatrix;
use super::{ordering, SparseWorkspace, NONE};
use crate::{LinalgError, Result};

/// Smallest regularization shift relative to the largest diagonal entry —
/// the same floor the dense [`crate::Cholesky::new_regularized`] uses, so
/// the two backends rescue semidefinite Hessians identically.
const MIN_SHIFT_REL: f64 = 1e-12;

/// Shift growth cap, relative to the diagonal scale (mirrors dense).
const SHIFT_LIMIT_REL: f64 = 1e8;

/// Geometric growth factor for the regularization shift (mirrors dense).
const SHIFT_GROWTH: f64 = 10.0;

/// Symbolic analysis of a symmetric sparsity pattern, computed once and
/// reused across every numeric factorization with that pattern — the
/// "analyze once per solve, re-analyze never" contract the barrier solver
/// relies on across Newton steps.
#[derive(Debug, Clone)]
pub struct CholSymbolic {
    n: usize,
    /// Fill-reducing permutation: `perm[k]` = original index at position `k`.
    perm: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` = root).
    parent: Vec<usize>,
    /// Column pointers of the factor `L` (diagonal included).
    l_colptr: Vec<usize>,
    /// Permuted upper-triangle map: for permuted column `k`, the permuted
    /// rows `i <= k` and the index into the analyzed matrix's value array
    /// holding that cell. Numeric factorization reads values through this
    /// map, so it never re-derives the pattern.
    amap_ptr: Vec<usize>,
    amap_row: Vec<usize>,
    amap_val: Vec<usize>,
    /// Nonzero count of the analyzed matrix — numeric factorization
    /// requires the same storage layout so the value map stays valid.
    analyzed_nnz: usize,
}

impl CholSymbolic {
    /// Analyzes a symmetric matrix's pattern. Only one triangle of each
    /// off-diagonal cell is read (the first stored occurrence); a caller
    /// passing a genuinely symmetric matrix gets identical values either
    /// way. Later numeric factorizations must present the *same pattern*
    /// (same `col_ptr`/`row_idx` layout) with possibly different values.
    pub fn analyze(a: &CscMatrix) -> Result<CholSymbolic> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                got: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let perm = {
            let mut order = ordering::min_degree(&ordering::symmetric_adjacency(a));
            if order.len() < n {
                // Defensive: pad with any unlisted nodes (cannot happen for
                // well-formed adjacency, but an ordering must be total).
                let mut seen = vec![false; n];
                for &p in &order {
                    seen[p] = true;
                }
                for (p, &s) in seen.iter().enumerate() {
                    if !s {
                        order.push(p);
                    }
                }
            }
            order
        };
        let mut pinv = vec![0usize; n];
        for (k, &p) in perm.iter().enumerate() {
            pinv[p] = k;
        }

        // Permuted upper-triangle cells, deduplicated, column-major.
        let mut cells: Vec<(usize, usize, usize)> = Vec::with_capacity(a.nnz());
        for c in 0..n {
            let (rows, _) = a.col(c);
            let base = a.col_ptr()[c];
            for (off, &r) in rows.iter().enumerate() {
                let (pr, pc) = (pinv[r], pinv[c]);
                let (i2, j2) = if pr <= pc { (pr, pc) } else { (pc, pr) };
                cells.push((j2, i2, base + off));
            }
        }
        cells.sort_by_key(|&(j2, i2, _)| (j2, i2));
        cells.dedup_by_key(|&mut (j2, i2, _)| (j2, i2));
        let mut amap_ptr = vec![0usize; n + 1];
        let mut amap_row = Vec::with_capacity(cells.len());
        let mut amap_val = Vec::with_capacity(cells.len());
        for &(j2, i2, vi) in &cells {
            amap_ptr[j2 + 1] += 1;
            amap_row.push(i2);
            amap_val.push(vi);
        }
        for k in 0..n {
            amap_ptr[k + 1] += amap_ptr[k];
        }

        // Elimination tree (over permuted indices) with path compression.
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for k in 0..n {
            for &start in &amap_row[amap_ptr[k]..amap_ptr[k + 1]] {
                let mut node = start;
                while node != NONE && node < k {
                    let next = ancestor[node];
                    ancestor[node] = k;
                    if next == NONE {
                        parent[node] = k;
                        break;
                    }
                    node = next;
                }
            }
        }

        // Column counts of L via the same row-pattern walk (ereach) the
        // numeric phase performs; the diagonal is always present.
        let mut counts = vec![1usize; n];
        let mut flag = vec![0u64; n];
        let mut stamp = 0u64;
        for k in 0..n {
            stamp += 1;
            for &start in &amap_row[amap_ptr[k]..amap_ptr[k + 1]] {
                let mut node = start;
                while node != NONE && node < k && flag[node] != stamp {
                    flag[node] = stamp;
                    counts[node] += 1;
                    node = parent[node];
                }
            }
        }
        let mut l_colptr = vec![0usize; n + 1];
        for (j, &c) in counts.iter().enumerate() {
            l_colptr[j + 1] = l_colptr[j] + c;
        }

        Ok(CholSymbolic {
            n,
            perm,
            parent,
            l_colptr,
            amap_ptr,
            amap_row,
            amap_val,
            analyzed_nnz: a.nnz(),
        })
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Predicted factor nonzeros (diagonal included).
    pub fn predicted_fill(&self) -> usize {
        *self.l_colptr.last().unwrap_or(&0)
    }
}

/// Sparse Cholesky factor `P A Pᵀ = L Lᵀ` (diagonal stored as the first
/// entry of each column).
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    perm: Vec<usize>,
}

impl SparseCholesky {
    /// One-shot convenience: analyze + factorize with a local workspace.
    pub fn new(a: &CscMatrix) -> Result<SparseCholesky> {
        let sym = CholSymbolic::analyze(a)?;
        let mut ws = SparseWorkspace::new();
        SparseCholesky::factorize(a, &sym, &mut ws)
    }

    /// Numeric factorization under a previously computed symbolic
    /// analysis. `a` must have the exact pattern `sym` was analyzed on.
    pub fn factorize(
        a: &CscMatrix,
        sym: &CholSymbolic,
        ws: &mut SparseWorkspace,
    ) -> Result<SparseCholesky> {
        SparseCholesky::factorize_shifted(a, sym, 0.0, ws)
    }

    /// Factorizes `A + shift·I` (in the permuted ordering) — the building
    /// block for [`SparseCholesky::factorize_regularized`].
    pub fn factorize_shifted(
        a: &CscMatrix,
        sym: &CholSymbolic,
        shift: f64,
        ws: &mut SparseWorkspace,
    ) -> Result<SparseCholesky> {
        if a.nrows() != a.ncols() || a.nrows() != sym.n || a.nnz() != sym.analyzed_nnz {
            return Err(LinalgError::DimensionMismatch {
                expected: (sym.n, sym.n),
                got: (a.nrows(), a.ncols()),
            });
        }
        let n = sym.n;
        ws.ensure(n);
        let vals = a.values();
        let fill = sym.predicted_fill();
        let mut l_rows = vec![0usize; fill];
        let mut l_vals = vec![0.0f64; fill];
        // Next free slot per column; the diagonal claims the first slot
        // when its row is processed, later rows append in order.
        let mut cursor: Vec<usize> = sym.l_colptr[..n].to_vec();

        for k in 0..n {
            // Row pattern of L(k, :): climb the etree from each stored
            // upper-triangle row of permuted column k.
            ws.stamp += 1;
            ws.topo.clear();
            let mut d = shift;
            for p in sym.amap_ptr[k]..sym.amap_ptr[k + 1] {
                let i = sym.amap_row[p];
                let v = vals[sym.amap_val[p]];
                if i == k {
                    d += v;
                    continue;
                }
                ws.x[i] = v;
                let mut node = i;
                while node != NONE && node < k && ws.flag[node] != ws.stamp {
                    ws.flag[node] = ws.stamp;
                    ws.topo.push(node);
                    node = sym.parent[node];
                }
            }
            // Updates flow from lower to higher pattern indices, so
            // ascending order is a valid topological processing order.
            ws.topo.sort_unstable();

            for &j in &ws.topo {
                let lkj = ws.x[j] / l_vals[sym.l_colptr[j]];
                ws.x[j] = 0.0;
                for p in sym.l_colptr[j] + 1..cursor[j] {
                    ws.x[l_rows[p]] -= l_vals[p] * lkj;
                }
                d -= lkj * lkj;
                l_rows[cursor[j]] = k;
                l_vals[cursor[j]] = lkj;
                cursor[j] += 1;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { row: sym.perm[k] });
            }
            l_rows[cursor[k]] = k;
            l_vals[cursor[k]] = d.sqrt();
            cursor[k] += 1;
        }

        Ok(SparseCholesky {
            n,
            l_colptr: sym.l_colptr.clone(),
            l_rows,
            l_vals,
            perm: sym.perm.clone(),
        })
    }

    /// Factorizes `A + λI`, geometrically growing `λ` from `initial_shift`
    /// until positive definite — semantics mirror the dense
    /// [`crate::Cholesky::new_regularized`], returning the shift used.
    pub fn factorize_regularized(
        a: &CscMatrix,
        sym: &CholSymbolic,
        initial_shift: f64,
        ws: &mut SparseWorkspace,
    ) -> Result<(SparseCholesky, f64)> {
        if let Ok(ch) = SparseCholesky::factorize_shifted(a, sym, 0.0, ws) {
            return Ok((ch, 0.0));
        }
        // Mirrors the dense guard: non-finite entries are unrescuable, and an
        // infinite diagonal would push `limit` to infinity, where the growth
        // loop can no longer terminate (`shift` saturates at `inf <= inf`).
        if !a.values().iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NotPositiveDefinite { row: 0 });
        }
        let mut max_diag = f64::EPSILON;
        for k in 0..sym.n {
            for p in sym.amap_ptr[k]..sym.amap_ptr[k + 1] {
                if sym.amap_row[p] == k {
                    if let Some(v) = a.values().get(sym.amap_val[p]) {
                        max_diag = max_diag.max(v.abs());
                    }
                }
            }
        }
        let mut shift = initial_shift.max(MIN_SHIFT_REL * max_diag);
        let limit = SHIFT_LIMIT_REL * max_diag.max(1.0);
        while shift <= limit && shift.is_finite() {
            if let Ok(ch) = SparseCholesky::factorize_shifted(a, sym, shift, ws) {
                return Ok((ch, shift));
            }
            shift *= SHIFT_GROWTH;
        }
        Err(LinalgError::NotPositiveDefinite { row: 0 })
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored factor nonzeros (diagonal included).
    pub fn fill_nnz(&self) -> usize {
        self.l_vals.len()
    }

    /// Solves `A x = b` through `P A Pᵀ = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut y: Vec<f64> = (0..n).map(|k| b[self.perm[k]]).collect();
        // Forward: L y = P b (column-oriented, diagonal first per column).
        for j in 0..n {
            let lo = self.l_colptr[j];
            let hi = self.l_colptr[j + 1];
            let yj = y[j] / self.l_vals[lo];
            y[j] = yj;
            for p in lo + 1..hi {
                y[self.l_rows[p]] -= self.l_vals[p] * yj;
            }
        }
        // Backward: Lᵀ z = y via column dot-products.
        for j in (0..n).rev() {
            let lo = self.l_colptr[j];
            let hi = self.l_colptr[j + 1];
            let mut s = y[j];
            for p in lo + 1..hi {
                s -= self.l_vals[p] * y[self.l_rows[p]];
            }
            y[j] = s / self.l_vals[lo];
        }
        let mut x = vec![0.0; n];
        for (k, &yk) in y.iter().enumerate() {
            x[self.perm[k]] = yk;
        }
        x
    }

    /// The factor in `(col_ptr, rows, values)` form, for tests.
    pub fn factor_parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.l_colptr, &self.l_rows, &self.l_vals)
    }

    /// The fill-reducing permutation used (`perm[k]` = original index).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn spd() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 5.0, 0.0, 1.0],
            &[0.0, 0.0, 3.0, 0.0],
            &[0.0, 1.0, 0.0, 6.0],
        ])
    }

    #[test]
    fn solve_matches_dense() {
        let d = spd();
        let s = CscMatrix::from_dense(&d);
        let ch = SparseCholesky::new(&s).unwrap();
        let x_true = vec![1.0, -1.0, 2.0, 0.5];
        let b = d.matvec(&x_true);
        let x = ch.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let s = CscMatrix::from_dense(&d);
        assert!(matches!(
            SparseCholesky::new(&s),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn regularized_recovers_indefinite() {
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let s = CscMatrix::from_dense(&d);
        let sym = CholSymbolic::analyze(&s).unwrap();
        let mut ws = SparseWorkspace::new();
        let (ch, shift) = SparseCholesky::factorize_regularized(&s, &sym, 1e-8, &mut ws).unwrap();
        assert!(shift > 0.0);
        assert!(ch.solve(&[1.0, 1.0]).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regularized_rejects_non_finite_instead_of_spinning() {
        // Twin of the dense test: an infinite diagonal once made the shift
        // limit infinite and the growth loop unterminating.
        let d = Matrix::from_rows(&[&[f64::INFINITY, 2.0], &[2.0, -1.0]]);
        let s = CscMatrix::from_dense(&d);
        let sym = CholSymbolic::analyze(&s).unwrap();
        let mut ws = SparseWorkspace::new();
        assert!(SparseCholesky::factorize_regularized(&s, &sym, 1e-8, &mut ws).is_err());
    }

    #[test]
    fn symbolic_reuse_across_newton_like_value_changes() {
        let d = spd();
        let s1 = CscMatrix::from_dense(&d);
        let sym = CholSymbolic::analyze(&s1).unwrap();
        let mut ws = SparseWorkspace::new();
        let _ = SparseCholesky::factorize(&s1, &sym, &mut ws).unwrap();
        // Same pattern, scaled values — the Newton-step shape.
        let mut s2 = s1.clone();
        for v in s2.values_mut() {
            *v *= 2.5;
        }
        let ch = SparseCholesky::factorize(&s2, &sym, &mut ws).unwrap();
        let d2 = s2.to_dense();
        let x_true = vec![0.5, 1.5, -2.0, 1.0];
        let x = ch.solve(&d2.matvec(&x_true));
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }
}
