//! Sparse LU with partial pivoting (left-looking Gilbert–Peierls).
// lint:allow-file(slice-index): sparse factorization kernel — indices are
// row/column ids and compressed-storage offsets validated against the
// matrix dimension at entry; iterator forms would obscure the
// reach/scatter recurrences.

use super::csc::CscMatrix;
use super::{ordering, SparseWorkspace, NONE};
use crate::{LinalgError, Result};

/// Pivot tolerance relative to the matrix scale, mirroring the dense
/// [`crate::Lu`] `PIVOT_TOL`: a column whose best available pivot is below
/// `SPARSE_PIVOT_TOL · max|A|` is reported singular.
const SPARSE_PIVOT_TOL: f64 = 1e-13;

/// Reusable symbolic analysis for [`SparseLu`]: the fill-reducing column
/// elimination order. With partial pivoting the row permutation is a
/// numeric decision, so the symbolic phase is exactly the part that is
/// value-independent — analyze once per pattern, factorize per value set.
#[derive(Debug, Clone)]
pub struct LuSymbolic {
    n: usize,
    /// `col_order[k]` = original column factorized at position `k`.
    col_order: Vec<usize>,
}

impl LuSymbolic {
    /// Orders the columns of a square pattern by minimum degree on the
    /// symmetrized pattern of `A`.
    pub fn analyze(a: &CscMatrix) -> Result<LuSymbolic> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                got: (a.nrows(), a.ncols()),
            });
        }
        let col_order = ordering::min_degree(&ordering::symmetric_adjacency(a));
        Ok(LuSymbolic {
            n: a.nrows(),
            col_order,
        })
    }

    pub fn n(&self) -> usize {
        self.n
    }
}

/// Sparse partial-pivoting factorization `P A Q = L U`.
///
/// `Q` is the symbolic column order, `P` the pivoting row permutation.
/// `L` is unit lower triangular (strict part stored, rows in pivot
/// order), `U` upper triangular with its diagonal stored separately.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `perm[k]` = original row pivotal at position `k`; `pinv` inverts it.
    perm: Vec<usize>,
    pinv: Vec<usize>,
    col_order: Vec<usize>,
}

impl SparseLu {
    /// One-shot convenience: analyze + factorize with a local workspace.
    pub fn new(a: &CscMatrix) -> Result<SparseLu> {
        let sym = LuSymbolic::analyze(a)?;
        let mut ws = SparseWorkspace::new();
        SparseLu::factorize(a, &sym, &mut ws)
    }

    /// Numeric factorization under a previously computed symbolic
    /// analysis. `a` must have the dimension `sym` was analyzed for; the
    /// sparsity pattern may differ (the column order is then merely a
    /// weaker fill heuristic, never a correctness issue).
    pub fn factorize(
        a: &CscMatrix,
        sym: &LuSymbolic,
        ws: &mut SparseWorkspace,
    ) -> Result<SparseLu> {
        if a.nrows() != a.ncols() || a.nrows() != sym.n {
            return Err(LinalgError::DimensionMismatch {
                expected: (sym.n, sym.n),
                got: (a.nrows(), a.ncols()),
            });
        }
        let n = sym.n;
        ws.ensure(n);
        let amax = a.values().iter().fold(0.0_f64, |s, v| s.max(v.abs()));
        let pivot_floor = SPARSE_PIVOT_TOL * amax;

        let mut lu = SparseLu {
            n,
            l_colptr: vec![0; n + 1],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_colptr: vec![0; n + 1],
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![0.0; n],
            perm: vec![NONE; n],
            pinv: vec![NONE; n],
            col_order: sym.col_order.clone(),
        };

        for jj in 0..n {
            let j = sym.col_order[jj];
            // Symbolic: pattern of L⁻¹ A[:,j] = reach of A[:,j]'s rows
            // through the columns factorized so far, in topological order.
            ws.stamp += 1;
            ws.topo.clear();
            let (a_rows, a_vals) = a.col(j);
            for &root in a_rows {
                if ws.flag[root] == ws.stamp {
                    continue;
                }
                ws.flag[root] = ws.stamp;
                ws.stack.clear();
                ws.stack.push((root, 0));
                while let Some(&(node, child_pos)) = ws.stack.last() {
                    let kp = lu.pinv[node];
                    let children: &[usize] = if kp == NONE {
                        &[]
                    } else {
                        &lu.l_rows[lu.l_colptr[kp]..lu.l_colptr[kp + 1]]
                    };
                    if child_pos < children.len() {
                        let child = children[child_pos];
                        if let Some(top) = ws.stack.last_mut() {
                            top.1 += 1;
                        }
                        if ws.flag[child] != ws.stamp {
                            ws.flag[child] = ws.stamp;
                            ws.stack.push((child, 0));
                        }
                    } else {
                        ws.stack.pop();
                        ws.topo.push(node);
                    }
                }
            }
            // Postorder → reverse = topological (parents before children).
            ws.topo.reverse();

            // Numeric: scatter A[:,j] and run the sparse triangular solve.
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                ws.x[r] = v;
            }
            for &r in &ws.topo {
                let kp = lu.pinv[r];
                if kp == NONE {
                    continue;
                }
                let xr = ws.x[r];
                if crate::approx::exactly_zero(xr) {
                    continue;
                }
                for p in lu.l_colptr[kp]..lu.l_colptr[kp + 1] {
                    ws.x[lu.l_rows[p]] -= lu.l_vals[p] * xr;
                }
            }

            // Partition into U entries (pivotal rows) and pivot candidates.
            let mut pivot_row = NONE;
            let mut pivot_abs = 0.0_f64;
            for &r in &ws.topo {
                if lu.pinv[r] != NONE {
                    let v = ws.x[r];
                    if !crate::approx::exactly_zero(v) {
                        lu.u_rows.push(lu.pinv[r]);
                        lu.u_vals.push(v);
                    }
                } else {
                    let mag = ws.x[r].abs();
                    if mag > pivot_abs {
                        pivot_abs = mag;
                        pivot_row = r;
                    }
                }
            }
            if pivot_row == NONE || pivot_abs <= pivot_floor {
                for &r in &ws.topo {
                    ws.x[r] = 0.0;
                }
                return Err(LinalgError::Singular { pivot: jj });
            }
            lu.u_colptr[jj + 1] = lu.u_rows.len();
            let pivot_val = ws.x[pivot_row];
            lu.u_diag[jj] = pivot_val;
            lu.pinv[pivot_row] = jj;
            lu.perm[jj] = pivot_row;
            for &r in &ws.topo {
                if lu.pinv[r] == NONE {
                    let v = ws.x[r] / pivot_val;
                    if !crate::approx::exactly_zero(v) {
                        // Original row id for now; remapped to pivot order
                        // once every row has been assigned a pivot.
                        lu.l_rows.push(r);
                        lu.l_vals.push(v);
                    }
                }
                ws.x[r] = 0.0;
            }
            lu.l_colptr[jj + 1] = lu.l_rows.len();
        }

        for r in &mut lu.l_rows {
            *r = lu.pinv[*r];
        }
        Ok(lu)
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored factor nonzeros (L strict + U strict + diagonal) — the
    /// fill metric surfaced through `SolveStats::fill_nnz`.
    pub fn fill_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(b.len(), self.n);
        let n = self.n;
        // y = P b, then L y, then U y (in place), then x = Q y.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for jj in 0..n {
            let yj = y[jj];
            if crate::approx::exactly_zero(yj) {
                continue;
            }
            for p in self.l_colptr[jj]..self.l_colptr[jj + 1] {
                y[self.l_rows[p]] -= self.l_vals[p] * yj;
            }
        }
        for jj in (0..n).rev() {
            let z = y[jj] / self.u_diag[jj];
            y[jj] = z;
            if crate::approx::exactly_zero(z) {
                continue;
            }
            for p in self.u_colptr[jj]..self.u_colptr[jj + 1] {
                y[self.u_rows[p]] -= self.u_vals[p] * z;
            }
        }
        let mut x = vec![0.0; n];
        for jj in 0..n {
            x[self.col_order[jj]] = y[jj];
        }
        x
    }

    /// Solves `Aᵀ x = b`.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(b.len(), self.n);
        let n = self.n;
        // w = Qᵀ b, then Uᵀ s = w, then Lᵀ t = s, then x = Pᵀ t.
        let w: Vec<f64> = (0..n).map(|jj| b[self.col_order[jj]]).collect();
        let mut s = vec![0.0; n];
        for jj in 0..n {
            let mut v = w[jj];
            for p in self.u_colptr[jj]..self.u_colptr[jj + 1] {
                v -= self.u_vals[p] * s[self.u_rows[p]];
            }
            s[jj] = v / self.u_diag[jj];
        }
        for jj in (0..n).rev() {
            let mut v = s[jj];
            for p in self.l_colptr[jj]..self.l_colptr[jj + 1] {
                v -= self.l_vals[p] * s[self.l_rows[p]];
            }
            s[jj] = v;
        }
        let mut x = vec![0.0; n];
        for (i, &si) in s.iter().enumerate() {
            x[self.perm[i]] = si;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn example() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 0.0, 0.0, 1.0],
            &[0.0, 3.0, 0.0, 0.0],
            &[1.0, 0.0, 4.0, 0.0],
            &[0.0, 1.0, 0.0, 5.0],
        ])
    }

    #[test]
    fn solve_matches_dense() {
        let d = example();
        let s = CscMatrix::from_dense(&d);
        let lu = SparseLu::new(&s).unwrap();
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = d.matvec(&x_true);
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn solve_transposed_matches_dense() {
        let d = example();
        let s = CscMatrix::from_dense(&d);
        let lu = SparseLu::new(&s).unwrap();
        let x_true = vec![0.25, 1.0, -1.5, 2.0];
        let b = d.matvec_transposed(&x_true);
        let x = lu.solve_transposed(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        // Column 2 is a multiple of column 0.
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[3.0, 1.0, 6.0], &[-1.0, 0.0, -2.0]]);
        let s = CscMatrix::from_dense(&d);
        assert!(matches!(
            SparseLu::new(&s),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn symbolic_reuse_across_value_sets() {
        let d = example();
        let s1 = CscMatrix::from_dense(&d);
        let sym = LuSymbolic::analyze(&s1).unwrap();
        let mut ws = SparseWorkspace::new();
        let _ = SparseLu::factorize(&s1, &sym, &mut ws).unwrap();
        // Same pattern, different values — reuse symbolic + workspace.
        let mut d2 = d.clone();
        d2[(0, 0)] = 7.0;
        d2[(3, 3)] = -2.0;
        let s2 = CscMatrix::from_dense(&d2);
        let lu2 = SparseLu::factorize(&s2, &sym, &mut ws).unwrap();
        let x_true = vec![1.0, 2.0, 3.0, 4.0];
        let x = lu2.solve(&d2.matvec(&x_true));
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }
}
