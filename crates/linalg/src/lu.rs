//! LU factorization with partial pivoting.
// lint:allow-file(slice-index): dense factorization kernel — indices run
// over the matrix dimensions checked at entry; iterator forms would
// obscure the elimination recurrences.

use crate::{LinalgError, Matrix, Result};

/// Partial-pivoting LU factorization `P A = L U`.
///
/// Used for general (non-symmetric) square systems, e.g. KKT-like systems in
/// the barrier solver's predictor steps and for small dense basis solves in
/// tests. The factors are stored packed in a single matrix (`L` below the
/// diagonal with implicit unit diagonal, `U` on and above it).
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 / -1.0) for determinant computation.
    perm_sign: f64,
}

impl Lu {
    /// Tolerance below which a pivot is considered numerically zero.
    const PIVOT_TOL: f64 = 1e-13;

    /// Factorizes a square matrix. Fails with [`LinalgError::Singular`] when
    /// no acceptable pivot exists in a column.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        // Scale factors for scaled partial pivoting: more robust on rows of
        // wildly different magnitude (simplex cut rows can be like that).
        let scales: Vec<f64> = (0..n)
            .map(|i| {
                m.row(i)
                    .iter()
                    .fold(0.0_f64, |s, v| s.max(v.abs()))
                    .max(Lu::PIVOT_TOL)
            })
            .collect();
        let mut scale_of_row: Vec<f64> = scales;

        for k in 0..n {
            // Choose pivot row maximizing |a_ik| / scale_i.
            let mut best = k;
            let mut best_val = m[(k, k)].abs() / scale_of_row[k];
            for i in (k + 1)..n {
                let v = m[(i, k)].abs() / scale_of_row[i];
                if v > best_val {
                    best_val = v;
                    best = i;
                }
            }
            if m[(best, k)].abs() <= Lu::PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if best != k {
                m.swap_rows(k, best);
                perm.swap(k, best);
                scale_of_row.swap(k, best);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                if !crate::approx::exactly_zero(factor) {
                    for j in (k + 1)..n {
                        let ukj = m[(k, j)];
                        m[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            perm_sign: sign,
        })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.packed.rows();
        debug_assert_eq!(b.len(), n);
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for k in 0..i {
                y[i] -= self.packed[(i, k)] * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.packed[(i, k)] * y[k];
            }
            y[i] /= self.packed[(i, i)];
        }
        y
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.packed.rows();
        self.perm_sign * (0..n).map(|i| self.packed[(i, i)]).product::<f64>()
    }

    /// Crude reciprocal condition estimate: min |U_ii| / max |U_ii|.
    ///
    /// Cheap and good enough to flag near-singular Newton systems.
    pub fn rcond_estimate(&self) -> f64 {
        let n = self.packed.rows();
        let mut mn = f64::INFINITY;
        let mut mx = 0.0_f64;
        for i in 0..n {
            let d = self.packed[(i, i)].abs();
            mn = mn.min(d);
            mx = mx.max(d);
        }
        if crate::approx::exactly_zero(mx) {
            0.0
        } else {
            mn / mx
        }
    }
}

/// One-shot convenience: solve `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Ok(Lu::new(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
    }

    #[test]
    fn determinant_sign_with_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn rcond_reasonable() {
        let well = Matrix::identity(4);
        assert!((Lu::new(&well).unwrap().rcond_estimate() - 1.0).abs() < 1e-12);
        let mut ill = Matrix::identity(4);
        ill[(3, 3)] = 1e-10;
        assert!(Lu::new(&ill).unwrap().rcond_estimate() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
    }
}
