//! Keyed deterministic noise primitives shared by the simulator crates.
//!
//! Every draw is a pure function of its key tuple — no mutable RNG state —
//! so simulations are reproducible run to run and insensitive to call
//! order. The CESM and FMO substrates both build their run-to-run noise
//! from these: a SplitMix64-mixed uniform and a Box–Muller normal, with a
//! caller-chosen `salt` decorrelating the second uniform so the two
//! simulators draw from distinct streams even under identical keys.

/// Floor on Box–Muller uniforms so `ln(u1)` stays finite.
const UNIFORM_FLOOR: f64 = 1e-12;

/// SplitMix64 — tiny, high-quality 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a key tuple.
pub fn keyed_uniform(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(a ^ splitmix64(b ^ splitmix64(c))));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller from two keyed uniforms; the second
/// uniform draws from the `seed ^ salt` stream.
pub fn keyed_std_normal(seed: u64, salt: u64, a: u64, b: u64, c: u64) -> f64 {
    let u1 = keyed_uniform(seed, a, b, c).max(UNIFORM_FLOOR);
    let u2 = keyed_uniform(seed ^ salt, a, b, c);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        for k in 0..1000u64 {
            let u = keyed_uniform(42, k, 7, 3);
            assert_eq!(u, keyed_uniform(42, k, 7, 3));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn salt_decorrelates_streams() {
        let a = keyed_std_normal(42, 0xDEAD_BEEF, 1, 128, 0);
        let b = keyed_std_normal(42, 0xC0FF_EE00, 1, 128, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_sane() {
        let n = 8000;
        let draws: Vec<f64> = (0..n)
            .map(|d| keyed_std_normal(7, 0xDEAD_BEEF, 2, 64, d))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "{mean}");
        assert!((var - 1.0).abs() < 0.1, "{var}");
    }
}
