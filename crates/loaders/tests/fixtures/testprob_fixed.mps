* Classic fixed-column layout (the canonical TESTPROB example shape):
* section headers in column 1, data indented to fixed fields, two
* entries per COLUMNS/RHS line.
NAME          TESTPROB
ROWS
 N  COST
 L  LIM1
 G  LIM2
 E  MYEQN
COLUMNS
    X1        COST            1.0   LIM1            1.0
    X1        LIM2            1.0
    X2        COST            2.0   LIM1            1.0
    X2        MYEQN          -1.0
    X3        COST           -1.0   LIM2            1.0
    X3        MYEQN           1.0
RHS
    RHS       LIM1            4.0   LIM2            1.0
    RHS       MYEQN           7.0
BOUNDS
 UP BND       X1              4.0
 LO BND       X2             -1.0
ENDATA
