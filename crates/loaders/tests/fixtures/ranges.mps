* RANGES on every sense: Le, Ge, Eq with positive range, Eq with
* negative range (the four rows of the MPS convention table).
NAME ranged
ROWS
 N OBJ
 L RLE
 G RGE
 E REQP
 E REQN
COLUMNS
 X OBJ 1 RLE 1
 X RGE 1 REQP 1
 X REQN 1
RHS
 RHS RLE 10 RGE 2
 RHS REQP 5 REQN 5
RANGES
 RNG RLE 4 RGE 3
 RNG REQP 2 REQN -2
ENDATA
