* Free format: single spaces, one entry per line, lower-case names.
NAME free
ROWS
 N obj
 L c1
COLUMNS
 x obj 1 c1 2
 y obj 1 c1 1
RHS
 rhs c1 10
ENDATA
