* Every bound type, including the netlib UP-negative convention (an
* upper bound below zero on a column with the default lower drops the
* lower to -inf).
NAME bounded
ROWS
 N OBJ
 G R1
COLUMNS
 A OBJ 1 R1 1
 B OBJ 1 R1 1
 C OBJ 1 R1 1
 D OBJ 1 R1 1
 E OBJ 1 R1 1
 F OBJ 1 R1 1
 G OBJ 1 R1 1
RHS
 RHS R1 1
BOUNDS
 FR BND A
 MI BND B
 UP BND B -2
 BV BND C
 UP BND D -5
 LI BND E 2
 UI BND E 8
 FX BND F 3.5
 PL BND G
ENDATA
