//! Golden-fixture tests for the MPS parser: a committed corpus of
//! well-formed files (fixed and free format, RANGES, the full bound-type
//! menagerie, integer markers) with exact parsed-model snapshots, plus
//! malformed inputs with exact error-message assertions. The fuzzing side
//! of this satellite lives in `hslb-testkit` (`Layer::Mps`).

use hslb_loaders::{parse_mps, write_mps, MpsModel};
use hslb_lp::RowSense;

fn fixture(text: &str) -> MpsModel {
    parse_mps(text).expect("fixture must parse")
}

/// Asserts a malformed input fails with exactly this rendered error
/// (`line N: message`).
fn assert_err(text: &str, expected: &str) {
    match parse_mps(text) {
        Ok(_) => panic!("expected parse failure {expected:?}, got a model"),
        Err(e) => assert_eq!(format!("{e}"), expected),
    }
}

#[test]
fn fixed_format_snapshot() {
    let m = fixture(include_str!("fixtures/testprob_fixed.mps"));
    assert_eq!(m.name, "TESTPROB");
    assert_eq!(m.objective, "COST");

    let rows: Vec<_> = m
        .rows
        .iter()
        .map(|r| (r.name.as_str(), r.sense, r.rhs, r.range))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("LIM1", RowSense::Le, 4.0, None),
            ("LIM2", RowSense::Ge, 1.0, None),
            ("MYEQN", RowSense::Eq, 7.0, None),
        ]
    );

    let cols: Vec<_> = m
        .columns
        .iter()
        .map(|c| {
            (
                c.name.as_str(),
                c.cost,
                c.entries.clone(),
                c.lo,
                c.hi,
                c.integer,
            )
        })
        .collect();
    assert_eq!(
        cols,
        vec![
            ("X1", 1.0, vec![(0, 1.0), (1, 1.0)], 0.0, 4.0, false),
            (
                "X2",
                2.0,
                vec![(0, 1.0), (2, -1.0)],
                -1.0,
                f64::INFINITY,
                false
            ),
            (
                "X3",
                -1.0,
                vec![(1, 1.0), (2, 1.0)],
                0.0,
                f64::INFINITY,
                false
            ),
        ]
    );
}

#[test]
fn free_format_snapshot() {
    let m = fixture(include_str!("fixtures/free_format.mps"));
    assert_eq!(m.name, "free");
    assert_eq!(m.objective, "obj");
    assert_eq!(m.rows.len(), 1);
    assert_eq!(m.rows[0].name, "c1");
    assert_eq!(m.rows[0].rhs, 10.0);
    assert_eq!(m.columns.len(), 2);
    assert_eq!(m.columns[0].entries, vec![(0, 2.0)]);
    assert_eq!(m.columns[1].entries, vec![(0, 1.0)]);
}

#[test]
fn ranges_intervals_follow_the_mps_convention() {
    let m = fixture(include_str!("fixtures/ranges.mps"));
    let by_name = |name: &str| m.rows.iter().find(|r| r.name == name).unwrap();
    // Le with range 4, rhs 10: [10-4, 10].
    assert_eq!(MpsModel::row_interval(by_name("RLE")), (6.0, 10.0));
    // Ge with range 3, rhs 2: [2, 2+3].
    assert_eq!(MpsModel::row_interval(by_name("RGE")), (2.0, 5.0));
    // Eq with range +2, rhs 5: [5, 7]; Eq with range -2, rhs 5: [3, 5].
    assert_eq!(MpsModel::row_interval(by_name("REQP")), (5.0, 7.0));
    assert_eq!(MpsModel::row_interval(by_name("REQN")), (3.0, 5.0));

    // Lowering splits ranged rows into a >=/<= pair: 4 ranged rows -> 8
    // LP rows.
    let (lp, _) = m.to_linear_program();
    assert_eq!(lp.num_rows(), 8);
}

#[test]
fn bound_types_snapshot() {
    let m = fixture(include_str!("fixtures/bounds.mps"));
    let by_name = |name: &str| m.columns.iter().find(|c| c.name == name).unwrap();
    let a = by_name("A"); // FR
    assert_eq!((a.lo, a.hi), (f64::NEG_INFINITY, f64::INFINITY));
    let b = by_name("B"); // MI then UP -2: explicit lower survives
    assert_eq!((b.lo, b.hi), (f64::NEG_INFINITY, -2.0));
    let c = by_name("C"); // BV
    assert_eq!((c.lo, c.hi, c.integer), (0.0, 1.0, true));
    let d = by_name("D"); // UP -5 with default lower: netlib drops lo to -inf
    assert_eq!((d.lo, d.hi), (f64::NEG_INFINITY, -5.0));
    let e = by_name("E"); // LI 2, UI 8
    assert_eq!((e.lo, e.hi), (2.0, 8.0));
    let f = by_name("F"); // FX 3.5
    assert_eq!((f.lo, f.hi), (3.5, 3.5));
    let g = by_name("G"); // PL: the default upper, explicitly
    assert_eq!((g.lo, g.hi), (0.0, f64::INFINITY));
}

#[test]
fn integer_markers_snapshot() {
    let m = fixture(include_str!("fixtures/integer_markers.mps"));
    let flags: Vec<_> = m
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.integer))
        .collect();
    assert_eq!(
        flags,
        vec![("X0", false), ("Z0", true), ("Z1", true), ("X1", false)]
    );
    // The integer flags survive lowering.
    let (_, integers) = m.to_linear_program();
    assert_eq!(integers, vec![false, true, true, false]);
}

#[test]
fn every_fixture_round_trips_through_the_writer() {
    for text in [
        include_str!("fixtures/testprob_fixed.mps"),
        include_str!("fixtures/free_format.mps"),
        include_str!("fixtures/ranges.mps"),
        include_str!("fixtures/bounds.mps"),
        include_str!("fixtures/integer_markers.mps"),
    ] {
        let m = fixture(text);
        let round = parse_mps(&write_mps(&m)).expect("writer output must parse");
        assert_eq!(m, round);
    }
}

#[test]
fn malformed_inputs_fail_with_exact_messages() {
    assert_err("GARBAGE\nENDATA\n", "line 1: unknown section 'GARBAGE'");
    assert_err(
        " X OBJ 1\nENDATA\n",
        "line 1: data before any section header",
    );
    assert_err(
        "OBJSENSE\n MAX\nENDATA\n",
        "line 1: OBJSENSE section is not supported",
    );
    assert_err("ROWS\n Q FOO\nENDATA\n", "line 2: unknown row sense 'Q'");
    assert_err(
        "ROWS\n N OBJ\n L R1\n L R1\nENDATA\n",
        "line 4: duplicate row 'R1'",
    );
    assert_err(
        "ROWS\n N OBJ\n L R1 EXTRA\nENDATA\n",
        "line 3: ROWS entry needs 2 fields, got 3",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1 R1\nENDATA\n",
        "line 4: COLUMNS entry needs 3 or 5 fields, got 4",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ abc\nENDATA\n",
        "line 4: invalid numeric value 'abc'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X NOPE 1\nENDATA\n",
        "line 4: unknown row 'NOPE'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n MK 'MARKER' 'FOO'\nENDATA\n",
        "line 4: unknown marker 'FOO'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nRHS\n RHS NOPE 1\nENDATA\n",
        "line 6: unknown row 'NOPE'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nBOUNDS\n UP BND NOPE 1\nENDATA\n",
        "line 6: unknown column 'NOPE'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nBOUNDS\n XX BND X 1\nENDATA\n",
        "line 6: XX bound needs 3 fields, got 4",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nBOUNDS\n ZZ BND X\nENDATA\n",
        "line 6: unknown bound type 'ZZ'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\n",
        "line 4: missing ENDATA",
    );
    assert_err(
        "ROWS\n L R1\nCOLUMNS\n X R1 1\nENDATA\n",
        "line 5: no objective (N) row",
    );
    assert_err("ROWS\n N OBJ\nENDATA\n", "line 3: no columns");
}

/// Regression (lint v2 `numeric-provenance` sweep): `parse_value` passed
/// `str::parse::<f64>` through unchecked, so the "nan"/"inf" spellings it
/// accepts became model coefficients. A NaN bound silently breaks the
/// `lo == hi` fixed-variable classification and every prune comparison
/// downstream; infinities belong in MI/PL bound types, not values (the
/// writer never emits them). All value positions must reject non-finite
/// input with a line-numbered diagnostic.
#[test]
fn non_finite_values_are_rejected_everywhere() {
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ nan\nENDATA\n",
        "line 4: non-finite numeric value 'nan'",
    );
    assert_err(
        "ROWS\n N OBJ\n L R1\nCOLUMNS\n X OBJ 1 R1 inf\nENDATA\n",
        "line 5: non-finite numeric value 'inf'",
    );
    assert_err(
        "ROWS\n N OBJ\n L R1\nCOLUMNS\n X OBJ 1 R1 2\nRHS\n B R1 NaN\nENDATA\n",
        "line 7: non-finite numeric value 'NaN'",
    );
    assert_err(
        "ROWS\n N OBJ\n L R1\nCOLUMNS\n X OBJ 1 R1 2\nRHS\n B R1 4\nRANGES\n RG R1 -inf\nENDATA\n",
        "line 9: non-finite numeric value '-inf'",
    );
    assert_err(
        "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nBOUNDS\n UP BND X infinity\nENDATA\n",
        "line 6: non-finite numeric value 'infinity'",
    );
}
