//! Seeded netlib-style LP instance generator.
//!
//! Instances are feasible and bounded by construction: a random box point
//! `x*` is drawn first and every row's rhs is set so `x*` satisfies it,
//! while finite bounds on every column rule out unboundedness. Row
//! sparsity (a handful of nonzeros per row regardless of `n`) mirrors the
//! netlib corpus and is what gives the sparse basis factorization its
//! asymptotic edge over the dense inverse.
// lint:allow-file(slice-index): indices are drawn from `0..n` over vectors
// sized `n` in the same function.

use crate::mps::{MpsColumn, MpsModel, MpsRow};
use hslb_lp::RowSense;
use hslb_rng::Rng;

/// Nonzeros per row: uniform in `[NNZ_MIN, NNZ_MAX]` (clamped to `n`).
const NNZ_MIN: usize = 3;
const NNZ_MAX: usize = 8;

/// Generates a netlib-like instance with `n` columns and `m` rows.
///
/// Deterministic in `(seed, n, m)`. Senses mix `<=`/`>=`/`=` roughly
/// 40/40/20; a few `<=` rows carry a `RANGES` entry so parser and solver
/// ranged-row handling stays exercised end to end.
pub fn netlib_like(seed: u64, n: usize, m: usize) -> MpsModel {
    let mut rng = Rng::new(hslb_rng::hash_mix(&[seed, n as u64, m as u64]));
    let xstar: Vec<f64> = rng.vec_f64(n, 0.0, 10.0);

    let mut columns: Vec<MpsColumn> = (0..n)
        .map(|j| MpsColumn {
            name: format!("X{j}"),
            cost: rng.f64_range(-5.0, 5.0),
            entries: Vec::new(),
            lo: 0.0,
            hi: xstar[j] + rng.f64_range(2.0, 12.0),
            integer: false,
        })
        .collect();

    let mut rows = Vec::with_capacity(m);
    for r in 0..m {
        let nnz = rng.usize_range(NNZ_MIN, NNZ_MAX).min(n.max(1));
        // Distinct column picks via rejection — nnz << n in all uses.
        let mut picked: Vec<usize> = Vec::with_capacity(nnz);
        while picked.len() < nnz {
            let j = rng.usize_range(0, n - 1);
            if !picked.contains(&j) {
                picked.push(j);
            }
        }
        picked.sort_unstable();
        let mut activity = 0.0;
        for &j in &picked {
            let a = rng.f64_range(-3.0, 3.0);
            columns[j].entries.push((r, a));
            activity += a * xstar[j];
        }
        let (sense, rhs, range) = match rng.usize_range(0, 9) {
            0..=3 => {
                let rhs = activity + rng.f64_range(0.5, 5.0);
                // Occasional ranged row: activity stays inside
                // [rhs - range, rhs] since range covers the slack.
                let range = if rng.bool(0.2) {
                    Some(rng.f64_range(6.0, 20.0))
                } else {
                    None
                };
                (RowSense::Le, rhs, range)
            }
            4..=7 => (RowSense::Ge, activity - rng.f64_range(0.5, 5.0), None),
            _ => (RowSense::Eq, activity, None),
        };
        rows.push(MpsRow {
            name: format!("R{r}"),
            sense,
            rhs,
            range,
        });
    }

    MpsModel {
        name: format!("NETGEN-{seed}-{n}x{m}"),
        objective: "COST".to_string(),
        rows,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = netlib_like(7, 40, 20);
        let b = netlib_like(7, 40, 20);
        assert_eq!(a, b);
        let c = netlib_like(8, 40, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_instance_is_feasible_and_bounded() {
        let model = netlib_like(42, 60, 30);
        let (lp, ints) = model.to_linear_program();
        assert!(ints.iter().all(|&i| !i));
        let sol = hslb_lp::solve(&lp);
        assert!(sol.is_optimal(), "status {:?}", sol.status);
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn round_trips_through_mps_text() {
        let model = netlib_like(3, 25, 12);
        let text = crate::mps::write_mps(&model);
        let back = crate::mps::parse_mps(&text).expect("reparse");
        assert_eq!(model.rows, back.rows);
        assert_eq!(model.columns, back.columns);
    }
}
