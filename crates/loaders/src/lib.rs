//! Model ingestion for the HSLB solver stack.
//!
//! The paper-scale instances are generated programmatically, but the sparse
//! numerical core (see DESIGN.md § Sparse core) is exercised on
//! netlib-scale LPs. This crate provides the two ways such instances enter
//! the workspace:
//!
//! * [`mps`] — an MPS reader ([`parse_mps`]) covering both the classic
//!   fixed-column layout and free (whitespace-delimited) format, including
//!   `RANGES`, the full `BOUNDS` vocabulary (`LO`/`UP`/`FX`/`FR`/`MI`/
//!   `PL`/`BV`/`LI`/`UI`) and `MARKER INTORG`/`INTEND` integrality blocks,
//!   plus a writer ([`write_mps`]) that round-trips exactly.
//! * [`netgen`] — a seeded netlib-style instance generator
//!   ([`netlib_like`]): feasible and bounded by construction, sparse rows,
//!   mixed senses — the source of the `sparse-lp` pinned benchmark suite.
//!
//! Parsed models are plain data ([`MpsModel`]); [`MpsModel::to_linear_program`]
//! lowers one onto the LP substrate (splitting ranged rows into `>=`/`<=`
//! pairs) and reports per-variable integrality for the MINLP layer.

pub mod mps;
pub mod netgen;

pub use mps::{parse_mps, write_mps, MpsColumn, MpsError, MpsModel, MpsRow};
pub use netgen::netlib_like;
