//! MPS reader and writer.
//!
//! Tokenization is whitespace-based, which accepts both the classic
//! fixed-column layout and free format (the two only differ in padding).
//! Names may therefore not contain spaces — true of every netlib file and
//! of everything this workspace writes.
// lint:allow-file(slice-index): every index here is minted by this parser
// in the same pass that uses it (symbol-table positions, token counts
// validated immediately before access); malformed input is rejected with
// MpsError, never by reaching an out-of-range index.
// lint:allow-file(float-eq): the writer compares stored values against
// exact sentinels (0.0 = entry structurally absent, +/-inf = unbounded,
// lo == hi = fixed variable) to decide what to omit from the canonical
// form. These values are parsed or assigned, never computed, so exact
// equality is the correct test — a tolerance would silently drop
// near-zero coefficients and break the parse/write fixed point.

use hslb_lp::{LinearProgram, RowSense};
use std::collections::HashMap;

/// Parse or validation failure, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpsError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for MpsError {}

/// A constraint row (`N` objective rows are kept separately).
#[derive(Debug, Clone, PartialEq)]
pub struct MpsRow {
    pub name: String,
    pub sense: RowSense,
    pub rhs: f64,
    /// `RANGES` entry, if any; interpreted per the MPS convention (see
    /// [`MpsModel::row_interval`]).
    pub range: Option<f64>,
}

/// A structural column with its objective coefficient, row entries (by row
/// index into [`MpsModel::rows`]), bounds and integrality.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsColumn {
    pub name: String,
    pub cost: f64,
    pub entries: Vec<(usize, f64)>,
    pub lo: f64,
    pub hi: f64,
    pub integer: bool,
}

/// A parsed MPS model: plain data, snapshot-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsModel {
    /// `NAME` field (empty when the file omits it).
    pub name: String,
    /// Name of the objective (`N`) row.
    pub objective: String,
    pub rows: Vec<MpsRow>,
    pub columns: Vec<MpsColumn>,
}

impl MpsModel {
    /// Activity interval `[lo, hi]` implied by a row's sense, rhs, and
    /// optional range, per the MPS `RANGES` convention:
    ///
    /// | sense | range r   | interval             |
    /// |-------|-----------|----------------------|
    /// | `<=`  | any       | `[b - |r|, b]`       |
    /// | `>=`  | any       | `[b, b + |r|]`       |
    /// | `=`   | `r >= 0`  | `[b, b + r]`         |
    /// | `=`   | `r < 0`   | `[b + r, b]`         |
    pub fn row_interval(row: &MpsRow) -> (f64, f64) {
        let b = row.rhs;
        match (row.sense, row.range) {
            (RowSense::Le, None) => (f64::NEG_INFINITY, b),
            (RowSense::Ge, None) => (b, f64::INFINITY),
            (RowSense::Eq, None) => (b, b),
            (RowSense::Le, Some(r)) => (b - r.abs(), b),
            (RowSense::Ge, Some(r)) => (b, b + r.abs()),
            (RowSense::Eq, Some(r)) if r >= 0.0 => (b, b + r),
            (RowSense::Eq, Some(r)) => (b + r, b),
        }
    }

    /// Lowers the model onto the LP substrate. Ranged rows split into a
    /// `>=` row and a `<=` row; the returned vector flags integer columns
    /// for the MINLP layer (the LP itself treats them as continuous).
    pub fn to_linear_program(&self) -> (LinearProgram, Vec<bool>) {
        let mut lp = LinearProgram::new();
        let mut integers = Vec::with_capacity(self.columns.len());
        let vars: Vec<_> = self
            .columns
            .iter()
            .map(|c| {
                integers.push(c.integer);
                lp.add_named_var(&c.name, c.cost, c.lo, c.hi)
            })
            .collect();
        // Row entries are stored column-wise; regroup row-wise.
        let mut row_terms: Vec<Vec<(hslb_lp::VarId, f64)>> = vec![Vec::new(); self.rows.len()];
        for (c, col) in self.columns.iter().enumerate() {
            for &(r, v) in &col.entries {
                row_terms[r].push((vars[c], v));
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            let (lo, hi) = MpsModel::row_interval(row);
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) if lo == hi => {
                    lp.add_row(row_terms[r].clone(), RowSense::Eq, lo);
                }
                (true, true) => {
                    lp.add_row(row_terms[r].clone(), RowSense::Ge, lo);
                    lp.add_row(row_terms[r].clone(), RowSense::Le, hi);
                }
                (true, false) => {
                    lp.add_row(row_terms[r].clone(), RowSense::Ge, lo);
                }
                (false, true) => {
                    lp.add_row(row_terms[r].clone(), RowSense::Le, hi);
                }
                (false, false) => {}
            }
        }
        (lp, integers)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Start,
    Rows,
    Columns,
    Rhs,
    Ranges,
    Bounds,
    Done,
}

fn err(line: usize, msg: impl Into<String>) -> MpsError {
    MpsError {
        line,
        msg: msg.into(),
    }
}

fn parse_value(tok: &str, line: usize) -> Result<f64, MpsError> {
    let v = tok
        .parse::<f64>()
        .map_err(|_| err(line, format!("invalid numeric value '{tok}'")))?;
    // `str::parse::<f64>` accepts "nan"/"inf" spellings; a NaN coefficient
    // would silently poison every downstream comparison (fixed-variable
    // classification tests `lo == hi`, pruning compares bounds), and
    // infinities are expressed structurally in MPS via MI/PL bounds — the
    // writer never emits them as values. Reject both at the source with a
    // line-numbered error.
    if !v.is_finite() {
        return Err(err(line, format!("non-finite numeric value '{tok}'")));
    }
    Ok(v)
}

/// Parses MPS text (fixed or free format) into an [`MpsModel`].
pub fn parse_mps(text: &str) -> Result<MpsModel, MpsError> {
    let mut name = String::new();
    let mut objective: Option<String> = None;
    let mut rows: Vec<MpsRow> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    let mut free_rows: HashMap<String, ()> = HashMap::new();
    let mut columns: Vec<MpsColumn> = Vec::new();
    let mut col_index: HashMap<String, usize> = HashMap::new();
    let mut section = Section::Start;
    let mut integer_mode = false;
    // UP with a negative bound on a column whose lower is still the 0
    // default drops the lower to -inf (netlib convention); track which
    // columns had an explicit lower set.
    let mut explicit_lo: Vec<bool> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        if raw.starts_with('*') || raw.trim().is_empty() {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        let toks: Vec<&str> = raw.split_whitespace().collect();

        // Section headers sit in column 1.
        if !indented {
            let header = toks[0].to_uppercase();
            section = match header.as_str() {
                "NAME" => {
                    if let Some(n) = toks.get(1) {
                        name = (*n).to_string();
                    }
                    section
                }
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "RANGES" => Section::Ranges,
                "BOUNDS" => Section::Bounds,
                "ENDATA" => Section::Done,
                "OBJSENSE" | "OBJSENSE:" => {
                    return Err(err(line, "OBJSENSE section is not supported"))
                }
                other => return Err(err(line, format!("unknown section '{other}'"))),
            };
            if section == Section::Done {
                break;
            }
            continue;
        }

        match section {
            Section::Start => {
                return Err(err(line, "data before any section header"));
            }
            // The match on section headers breaks out of the loop the
            // moment ENDATA flips the state to Done, so no data line is
            // ever dispatched here.
            // lint:allow(panic-in-lib): unreachable by the loop's break-on-ENDATA above
            Section::Done => unreachable!("loop breaks at ENDATA"),
            Section::Rows => {
                let [sense_tok, row_name] = toks[..] else {
                    return Err(err(
                        line,
                        format!("ROWS entry needs 2 fields, got {}", toks.len()),
                    ));
                };
                let sense = match sense_tok.to_uppercase().as_str() {
                    "N" => {
                        // First N row is the objective; later ones are
                        // ignored free rows (standard MPS).
                        if objective.is_none() {
                            objective = Some(row_name.to_string());
                        } else {
                            free_rows.insert(row_name.to_string(), ());
                        }
                        continue;
                    }
                    "L" => RowSense::Le,
                    "G" => RowSense::Ge,
                    "E" => RowSense::Eq,
                    other => return Err(err(line, format!("unknown row sense '{other}'"))),
                };
                if row_index.contains_key(row_name) {
                    return Err(err(line, format!("duplicate row '{row_name}'")));
                }
                row_index.insert(row_name.to_string(), rows.len());
                rows.push(MpsRow {
                    name: row_name.to_string(),
                    sense,
                    rhs: 0.0,
                    range: None,
                });
            }
            Section::Columns => {
                // MARKER lines toggle integrality.
                if toks.len() >= 3 && toks[1].trim_matches('\'') == "MARKER" {
                    match toks[2].trim_matches('\'') {
                        "INTORG" => integer_mode = true,
                        "INTEND" => integer_mode = false,
                        other => {
                            return Err(err(line, format!("unknown marker '{other}'")));
                        }
                    }
                    continue;
                }
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        line,
                        format!("COLUMNS entry needs 3 or 5 fields, got {}", toks.len()),
                    ));
                }
                let col_name = toks[0];
                let ci = match col_index.get(col_name) {
                    Some(&ci) => ci,
                    None => {
                        let ci = columns.len();
                        col_index.insert(col_name.to_string(), ci);
                        columns.push(MpsColumn {
                            name: col_name.to_string(),
                            cost: 0.0,
                            entries: Vec::new(),
                            lo: 0.0,
                            hi: f64::INFINITY,
                            integer: integer_mode,
                        });
                        explicit_lo.push(false);
                        ci
                    }
                };
                for pair in toks[1..].chunks(2) {
                    let [row_name, val_tok] = pair else {
                        // lint:allow(panic-in-lib): toks.len() is 3 or 5, so chunks(2) yields only exact pairs
                        unreachable!("length checked above")
                    };
                    let v = parse_value(val_tok, line)?;
                    if objective.as_deref() == Some(*row_name) {
                        columns[ci].cost += v;
                    } else if free_rows.contains_key(*row_name) {
                        // entry in an ignored free row
                    } else if let Some(&r) = row_index.get(*row_name) {
                        columns[ci].entries.push((r, v));
                    } else {
                        return Err(err(line, format!("unknown row '{row_name}'")));
                    }
                }
            }
            Section::Rhs => {
                // First token is the RHS set name (conventionally "RHS").
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        line,
                        format!("RHS entry needs 3 or 5 fields, got {}", toks.len()),
                    ));
                }
                for pair in toks[1..].chunks(2) {
                    let [row_name, val_tok] = pair else {
                        // lint:allow(panic-in-lib): toks.len() is 3 or 5, so chunks(2) yields only exact pairs
                        unreachable!("length checked above")
                    };
                    let v = parse_value(val_tok, line)?;
                    if objective.as_deref() == Some(*row_name) || free_rows.contains_key(*row_name)
                    {
                        continue; // objective constant: not modeled
                    }
                    let Some(&r) = row_index.get(*row_name) else {
                        return Err(err(line, format!("unknown row '{row_name}'")));
                    };
                    rows[r].rhs = v;
                }
            }
            Section::Ranges => {
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        line,
                        format!("RANGES entry needs 3 or 5 fields, got {}", toks.len()),
                    ));
                }
                for pair in toks[1..].chunks(2) {
                    let [row_name, val_tok] = pair else {
                        // lint:allow(panic-in-lib): toks.len() is 3 or 5, so chunks(2) yields only exact pairs
                        unreachable!("length checked above")
                    };
                    let v = parse_value(val_tok, line)?;
                    let Some(&r) = row_index.get(*row_name) else {
                        return Err(err(line, format!("unknown row '{row_name}'")));
                    };
                    rows[r].range = Some(v);
                }
            }
            Section::Bounds => {
                let kind = toks[0].to_uppercase();
                let needs_value = matches!(kind.as_str(), "LO" | "UP" | "FX" | "LI" | "UI");
                let expected = if needs_value { 4 } else { 3 };
                if toks.len() != expected {
                    return Err(err(
                        line,
                        format!("{kind} bound needs {expected} fields, got {}", toks.len()),
                    ));
                }
                let col_name = toks[2];
                let Some(&ci) = col_index.get(col_name) else {
                    return Err(err(line, format!("unknown column '{col_name}'")));
                };
                let col = &mut columns[ci];
                match kind.as_str() {
                    "LO" | "LI" => {
                        col.lo = parse_value(toks[3], line)?;
                        explicit_lo[ci] = true;
                    }
                    "UP" | "UI" => {
                        col.hi = parse_value(toks[3], line)?;
                        if col.hi < 0.0 && !explicit_lo[ci] {
                            col.lo = f64::NEG_INFINITY;
                        }
                    }
                    "FX" => {
                        let v = parse_value(toks[3], line)?;
                        col.lo = v;
                        col.hi = v;
                        explicit_lo[ci] = true;
                    }
                    "FR" => {
                        col.lo = f64::NEG_INFINITY;
                        col.hi = f64::INFINITY;
                        explicit_lo[ci] = true;
                    }
                    "MI" => {
                        col.lo = f64::NEG_INFINITY;
                        explicit_lo[ci] = true;
                    }
                    "PL" => col.hi = f64::INFINITY,
                    "BV" => {
                        col.lo = 0.0;
                        col.hi = 1.0;
                        col.integer = true;
                        explicit_lo[ci] = true;
                    }
                    other => return Err(err(line, format!("unknown bound type '{other}'"))),
                }
            }
        }
    }

    if section != Section::Done {
        return Err(err(text.lines().count(), "missing ENDATA"));
    }
    let Some(objective) = objective else {
        return Err(err(text.lines().count(), "no objective (N) row"));
    };
    if columns.is_empty() {
        return Err(err(text.lines().count(), "no columns"));
    }
    Ok(MpsModel {
        name,
        objective,
        rows,
        columns,
    })
}

/// Writes a model back to free-format MPS text. `parse_mps` on the output
/// reproduces the model exactly (Rust's `{}` float formatting round-trips
/// `f64`).
pub fn write_mps(model: &MpsModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "NAME {}", model.name);
    out.push_str("ROWS\n");
    let _ = writeln!(out, " N {}", model.objective);
    for row in &model.rows {
        let s = match row.sense {
            RowSense::Le => 'L',
            RowSense::Ge => 'G',
            RowSense::Eq => 'E',
        };
        let _ = writeln!(out, " {s} {}", row.name);
    }
    out.push_str("COLUMNS\n");
    let mut integer_mode = false;
    for col in &model.columns {
        if col.integer != integer_mode {
            let marker = if col.integer { "INTORG" } else { "INTEND" };
            let _ = writeln!(out, " MK 'MARKER' '{marker}'");
            integer_mode = col.integer;
        }
        if col.cost != 0.0 || col.entries.is_empty() {
            let _ = writeln!(out, " {} {} {}", col.name, model.objective, col.cost);
        }
        for &(r, v) in &col.entries {
            let _ = writeln!(out, " {} {} {}", col.name, model.rows[r].name, v);
        }
    }
    if integer_mode {
        out.push_str(" MK 'MARKER' 'INTEND'\n");
    }
    out.push_str("RHS\n");
    for row in &model.rows {
        if row.rhs != 0.0 {
            let _ = writeln!(out, " RHS {} {}", row.name, row.rhs);
        }
    }
    if model.rows.iter().any(|r| r.range.is_some()) {
        out.push_str("RANGES\n");
        for row in &model.rows {
            if let Some(rng) = row.range {
                let _ = writeln!(out, " RNG {} {}", row.name, rng);
            }
        }
    }
    out.push_str("BOUNDS\n");
    for col in &model.columns {
        match (col.lo, col.hi) {
            (lo, hi) if lo == 0.0 && hi == f64::INFINITY => {}
            (lo, hi) if lo == hi => {
                let _ = writeln!(out, " FX BND {} {}", col.name, lo);
            }
            (lo, hi) => {
                if lo == f64::NEG_INFINITY {
                    let _ = writeln!(out, " MI BND {}", col.name);
                } else if lo != 0.0 {
                    let _ = writeln!(out, " LO BND {} {}", col.name, lo);
                }
                if hi != f64::INFINITY {
                    let _ = writeln!(out, " UP BND {} {}", col.name, hi);
                } else if lo == f64::NEG_INFINITY {
                    // MI alone already implies an infinite upper; nothing
                    // to add, but keep the branch explicit.
                }
            }
        }
    }
    out.push_str("ENDATA\n");
    out
}
