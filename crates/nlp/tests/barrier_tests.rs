//! Integration tests for the log-barrier NLP solver.

use hslb_nlp::{solve, ConstraintFn, NlpProblem, NlpStatus, ScalarFn, Term};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn linear_program_via_barrier() {
    // min x + y  s.t. x + y >= 4  (as -(x+y) + 4 <= 0), 0 <= x,y <= 10.
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 10.0);
    let y = p.add_var(1.0, 0.0, 10.0);
    p.add_constraint(
        ConstraintFn::new("sum")
            .linear_term(x, -1.0)
            .linear_term(y, -1.0)
            .with_constant(4.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 4.0, 1e-5);
}

#[test]
fn min_max_of_two_amdahl_curves() {
    // The HSLB core pattern: min T s.t. T >= 100/n1, T >= 400/n2, n1+n2 <= 10.
    // Continuous optimum splits nodes 2:8 (ratio sqrt? no — equalize 100/n1 =
    // 400/n2 with n1 + n2 = 10 -> n2 = 4 n1 -> n1 = 2, T = 50).
    let mut p = NlpProblem::new();
    let n1 = p.add_var(0.0, 0.5, 10.0);
    let n2 = p.add_var(0.0, 0.5, 10.0);
    let t = p.add_var(1.0, 0.0, 1e6);
    p.add_constraint(
        ConstraintFn::new("t1")
            .nonlinear_term(n1, ScalarFn::perf_model(100.0, 0.0, 1.0))
            .linear_term(t, -1.0),
    );
    p.add_constraint(
        ConstraintFn::new("t2")
            .nonlinear_term(n2, ScalarFn::perf_model(400.0, 0.0, 1.0))
            .linear_term(t, -1.0),
    );
    p.add_constraint(
        ConstraintFn::new("cap")
            .linear_term(n1, 1.0)
            .linear_term(n2, 1.0)
            .with_constant(-10.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 50.0, 1e-3);
    assert_close(sol.x[n1], 2.0, 1e-2);
    assert_close(sol.x[n2], 8.0, 1e-2);
}

#[test]
fn detects_infeasible() {
    // x <= 1 and x >= 3 with bounds [0, 10].
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 10.0);
    p.add_constraint(
        ConstraintFn::new("le1")
            .linear_term(x, 1.0)
            .with_constant(-1.0),
    );
    p.add_constraint(
        ConstraintFn::new("ge3")
            .linear_term(x, -1.0)
            .with_constant(3.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Infeasible);
}

#[test]
fn fixed_variables_are_respected() {
    // n fixed at 4 by bounds; T must come out at 100/4 + 7 = 32.
    let mut p = NlpProblem::new();
    let n = p.add_var(0.0, 4.0, 4.0);
    let t = p.add_var(1.0, 0.0, 1e9);
    p.add_constraint(
        ConstraintFn::new("perf")
            .nonlinear_term(n, ScalarFn::perf_model(100.0, 0.0, 1.0))
            .linear_term(t, -1.0)
            .with_constant(7.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.x[n], 4.0, 1e-12);
    assert_close(sol.objective, 32.0, 1e-4);
}

#[test]
fn all_variables_fixed_feasible() {
    let mut p = NlpProblem::new();
    let x = p.add_var(2.0, 3.0, 3.0);
    p.add_constraint(
        ConstraintFn::new("ok")
            .linear_term(x, 1.0)
            .with_constant(-5.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 6.0, 1e-12);
}

#[test]
fn all_variables_fixed_infeasible() {
    let mut p = NlpProblem::new();
    let x = p.add_var(2.0, 3.0, 3.0);
    p.add_constraint(
        ConstraintFn::new("bad")
            .linear_term(x, 1.0)
            .with_constant(-1.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Infeasible);
}

#[test]
fn empty_domain_is_an_error() {
    let mut p = NlpProblem::new();
    p.add_var(1.0, 0.0, 5.0);
    p.set_bounds(0, 2.0, 2.0);
    // Manufacture an empty domain through restrict-style misuse.
    // set_bounds asserts lo <= hi, so build the error path directly:
    let mut q = NlpProblem::new();
    q.add_var(1.0, 0.0, 5.0);
    // no public way to cross bounds — the error path guards internal misuse;
    // emulate by checking solve on a valid problem returns Ok.
    assert!(solve(&q).is_ok());
}

#[test]
fn quadratic_like_tradeoff_with_growth_term() {
    // min T s.t. T >= 1000/n + 0.5 n (convex, min at n = sqrt(2000) ≈ 44.7).
    let mut p = NlpProblem::new();
    let n = p.add_var(0.0, 1.0, 1000.0);
    let t = p.add_var(1.0, 0.0, 1e9);
    p.add_constraint(
        ConstraintFn::new("perf")
            .nonlinear_term(n, ScalarFn::perf_model(1000.0, 0.5, 1.0))
            .linear_term(t, -1.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    let n_star = 2000.0_f64.sqrt();
    let t_star = 1000.0 / n_star + 0.5 * n_star;
    assert_close(sol.x[n], n_star, 0.5);
    assert_close(sol.objective, t_star, 1e-2);
}

#[test]
fn power_growth_term_constraint() {
    // T >= 2 n^1.5 with n >= 4 -> minimize T by n = 4, T = 16.
    let mut p = NlpProblem::new();
    let n = p.add_var(0.0, 4.0, 100.0);
    let t = p.add_var(1.0, 0.0, 1e9);
    let mut f = ScalarFn::new();
    f.push(Term::PowerGrowth { b: 2.0, c: 1.5 });
    p.add_constraint(
        ConstraintFn::new("grow")
            .nonlinear_term(n, f)
            .linear_term(t, -1.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 16.0, 0.05);
}

#[test]
fn multipliers_flag_active_constraints() {
    // At the optimum of min_max_of_two_amdahl_curves, both perf constraints
    // are active (large multipliers); the capacity is active too.
    let mut p = NlpProblem::new();
    let n1 = p.add_var(0.0, 0.5, 10.0);
    let n2 = p.add_var(0.0, 0.5, 10.0);
    let t = p.add_var(1.0, 0.0, 1e6);
    p.add_constraint(
        ConstraintFn::new("t1")
            .nonlinear_term(n1, ScalarFn::perf_model(100.0, 0.0, 1.0))
            .linear_term(t, -1.0),
    );
    p.add_constraint(
        ConstraintFn::new("t2")
            .nonlinear_term(n2, ScalarFn::perf_model(400.0, 0.0, 1.0))
            .linear_term(t, -1.0),
    );
    p.add_constraint(
        ConstraintFn::new("cap")
            .linear_term(n1, 1.0)
            .linear_term(n2, 1.0)
            .with_constant(-10.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    // Multiplier magnitudes should dwarf those of inactive constraints —
    // here all three are active, so all should be clearly nonzero.
    assert!(
        sol.multipliers.iter().all(|&m| m > 1e-6),
        "{:?}",
        sol.multipliers
    );
}

#[test]
fn feasible_solution_is_feasible_for_problem() {
    let mut p = NlpProblem::new();
    let n1 = p.add_var(0.0, 1.0, 100.0);
    let n2 = p.add_var(0.0, 1.0, 100.0);
    let t = p.add_var(1.0, 0.0, 1e9);
    for (v, a) in [(n1, 300.0), (n2, 700.0)] {
        p.add_constraint(
            ConstraintFn::new("perf")
                .nonlinear_term(v, ScalarFn::perf_model(a, 0.0, 0.9))
                .linear_term(t, -1.0)
                .with_constant(3.0),
        );
    }
    p.add_constraint(
        ConstraintFn::new("cap")
            .linear_term(n1, 1.0)
            .linear_term(n2, 1.0)
            .with_constant(-64.0),
    );
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert!(p.is_feasible(&sol.x, 1e-6));
}

mod property {
    use super::*;
    use hslb_rng::Rng;

    /// Two-component min-max allocation: barrier optimum must (a) be
    /// feasible and (b) beat or match every point on a coarse feasible
    /// grid (global optimality of the convex solve).
    #[test]
    fn beats_grid_search() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x5b);
        for case in 0..40 {
            let a1 = rng.f64_range(50.0, 5000.0);
            let a2 = rng.f64_range(50.0, 5000.0);
            let d1 = rng.f64_range(0.0, 20.0);
            let d2 = rng.f64_range(0.0, 20.0);
            let cap = rng.f64_range(8.0, 64.0);
            let mut p = NlpProblem::new();
            let n1 = p.add_var(0.0, 1.0, cap);
            let n2 = p.add_var(0.0, 1.0, cap);
            let t = p.add_var(1.0, 0.0, 1e9);
            p.add_constraint(
                ConstraintFn::new("t1")
                    .nonlinear_term(n1, ScalarFn::perf_model(a1, 0.0, 1.0))
                    .linear_term(t, -1.0)
                    .with_constant(d1),
            );
            p.add_constraint(
                ConstraintFn::new("t2")
                    .nonlinear_term(n2, ScalarFn::perf_model(a2, 0.0, 1.0))
                    .linear_term(t, -1.0)
                    .with_constant(d2),
            );
            p.add_constraint(
                ConstraintFn::new("cap")
                    .linear_term(n1, 1.0)
                    .linear_term(n2, 1.0)
                    .with_constant(-cap),
            );
            let sol = solve(&p).unwrap();
            assert_eq!(sol.status, NlpStatus::Optimal, "case {case}");
            assert!(p.is_feasible(&sol.x, 1e-5), "case {case}");
            // Coarse grid of continuous splits.
            for k in 1..32 {
                let x1 = 1.0f64.max(cap * k as f64 / 32.0 - 1.0);
                let x2 = cap - x1;
                if x2 < 1.0 {
                    continue;
                }
                let tt = (a1 / x1 + d1).max(a2 / x2 + d2);
                assert!(
                    sol.objective <= tt + 1e-4 * (1.0 + tt),
                    "case {case}: barrier {} worse than grid point {}",
                    sol.objective,
                    tt
                );
            }
        }
    }
}

mod sparse_backend {
    use super::*;
    use hslb_linalg::LinalgBackend;
    use hslb_nlp::{solve_with, BarrierOptions};
    use hslb_rng::Rng;

    fn opts(backend: LinalgBackend) -> BarrierOptions {
        BarrierOptions {
            backend,
            ..Default::default()
        }
    }

    /// Random min-max allocation NLP (the HSLB core shape): minimize the
    /// epigraph variable t over per-group Amdahl curves and a node budget,
    /// optionally with an equality pinning the total allocation so the KKT
    /// sparse-LU path is exercised too.
    fn minmax_nlp(rng: &mut Rng, with_eq: bool) -> NlpProblem {
        let groups = rng.usize_range(2, 6);
        let mut p = NlpProblem::new();
        let vars: Vec<_> = (0..groups).map(|_| p.add_var(0.0, 0.5, 30.0)).collect();
        let t = p.add_var(1.0, 0.0, 1e6);
        for &v in &vars {
            let work = rng.f64_range(20.0, 300.0);
            p.add_constraint(
                ConstraintFn::new("curve")
                    .nonlinear_term(v, ScalarFn::perf_model(work, 0.0, 1.0))
                    .linear_term(t, -1.0),
            );
        }
        let cap = rng.f64_range(groups as f64 + 2.0, 4.0 * groups as f64);
        let mut budget = ConstraintFn::new("budget").with_constant(-cap);
        for &v in &vars {
            budget = budget.linear_term(v, 1.0);
        }
        p.add_constraint(budget);
        if with_eq {
            // Pin the total exactly at a feasible level (interior of the
            // budget): Σ x = cap - 1.
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_linear_eq(coeffs, cap - 1.0);
        }
        p
    }

    #[test]
    fn sparse_and_dense_backends_agree_on_random_nlps() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x7d);
        for case in 0..40 {
            let with_eq = case % 2 == 1;
            let p = minmax_nlp(&mut rng, with_eq);
            let dense = solve_with(&p, &opts(LinalgBackend::Dense)).unwrap();
            let sparse = solve_with(&p, &opts(LinalgBackend::Sparse)).unwrap();
            assert_eq!(dense.status, sparse.status, "case {case}");
            assert_eq!(dense.status, NlpStatus::Optimal, "case {case}");
            let scale = 1.0 + dense.objective.abs();
            assert!(
                (dense.objective - sparse.objective).abs() <= 1e-4 * scale,
                "case {case}: dense {} vs sparse {}",
                dense.objective,
                sparse.objective
            );
            assert!(
                sparse.factorizations >= 1,
                "case {case}: sparse path unused"
            );
            assert_eq!(
                dense.factorizations, 0,
                "dense path counts no sparse factors"
            );
        }
    }
}
