//! Linear-equality support in the barrier solver, cross-validated against
//! the simplex solver on problems both can express.

use hslb_nlp::{solve, ConstraintFn, NlpProblem, NlpStatus, ScalarFn};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn simple_equality_projection() {
    // min x + 2y  s.t. x + y = 10, 0 <= x,y <= 10  ->  x=10, y=0.
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 10.0);
    let y = p.add_var(2.0, 0.0, 10.0);
    p.add_linear_eq(vec![(x, 1.0), (y, 1.0)], 10.0);
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.x[x], 10.0, 1e-4);
    assert_close(sol.x[y], 0.0, 1e-4);
}

#[test]
fn equality_with_nonlinear_constraints() {
    // min T s.t. T >= 100/n1, T >= 300/n2, n1 + n2 = 20 (exact partition).
    // Balance point: 100/n1 = 300/n2 with n1+n2=20 -> n1=5, T=20.
    let mut p = NlpProblem::new();
    let n1 = p.add_var(0.0, 1.0, 20.0);
    let n2 = p.add_var(0.0, 1.0, 20.0);
    let t = p.add_var(1.0, 0.0, 1e6);
    for (v, a) in [(n1, 100.0), (n2, 300.0)] {
        p.add_constraint(
            ConstraintFn::new(format!("perf{v}"))
                .nonlinear_term(v, ScalarFn::perf_model(a, 0.0, 1.0))
                .linear_term(t, -1.0),
        );
    }
    p.add_linear_eq(vec![(n1, 1.0), (n2, 1.0)], 20.0);
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 20.0, 1e-2);
    assert_close(sol.x[n1] + sol.x[n2], 20.0, 1e-6);
}

#[test]
fn inconsistent_equalities_detected() {
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 10.0);
    p.add_linear_eq(vec![(x, 1.0)], 3.0);
    p.add_linear_eq(vec![(x, 1.0)], 7.0);
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Infeasible);
}

#[test]
fn equality_outside_bounds_detected() {
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 2.0);
    let y = p.add_var(1.0, 0.0, 2.0);
    p.add_linear_eq(vec![(x, 1.0), (y, 1.0)], 10.0); // max possible is 4
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Infeasible);
}

#[test]
fn pinned_variables_freeze_equalities() {
    // Both variables pinned by bounds; equality holds -> trivially optimal.
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 4.0, 4.0);
    let y = p.add_var(1.0, 6.0, 6.0);
    p.add_linear_eq(vec![(x, 1.0), (y, 1.0)], 10.0);
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.objective, 10.0, 1e-9);

    // And a violated frozen equality is infeasible.
    let mut q = NlpProblem::new();
    let x = q.add_var(1.0, 4.0, 4.0);
    q.add_linear_eq(vec![(x, 1.0)], 5.0);
    assert_eq!(solve(&q).unwrap().status, NlpStatus::Infeasible);
}

#[test]
fn redundant_equalities_are_harmless() {
    // The same equality twice (dependent rows) must not break the KKT solve.
    let mut p = NlpProblem::new();
    let x = p.add_var(1.0, 0.0, 10.0);
    let y = p.add_var(3.0, 0.0, 10.0);
    p.add_linear_eq(vec![(x, 1.0), (y, 1.0)], 6.0);
    p.add_linear_eq(vec![(x, 2.0), (y, 2.0)], 12.0);
    let sol = solve(&p).unwrap();
    assert_eq!(sol.status, NlpStatus::Optimal);
    assert_close(sol.x[x], 6.0, 1e-4);
    assert_close(sol.objective, 6.0, 1e-4);
}

mod cross_validation {
    use super::*;
    use hslb_lp::{LinearProgram, LpStatus, RowSense};

    /// Builds matching LP (simplex) and NLP (barrier) formulations of a
    /// random linear program with equalities, and compares optima.
    fn both_solve(
        costs: &[f64],
        boxes: &[(f64, f64)],
        eq_rhs: f64,
        le_rows: &[(Vec<f64>, f64)],
    ) -> Option<(f64, f64)> {
        let n = costs.len();
        // Simplex.
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = (0..n)
            .map(|j| lp.add_var(costs[j], boxes[j].0, boxes[j].1))
            .collect();
        lp.add_row(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            RowSense::Eq,
            eq_rhs,
        );
        for (coeffs, rhs) in le_rows {
            lp.add_row(
                vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect(),
                RowSense::Le,
                *rhs,
            );
        }
        let lp_sol = hslb_lp::solve(&lp);

        // Barrier.
        let mut p = NlpProblem::new();
        for j in 0..n {
            p.add_var(costs[j], boxes[j].0, boxes[j].1);
        }
        p.add_linear_eq((0..n).map(|j| (j, 1.0)).collect(), eq_rhs);
        for (k, (coeffs, rhs)) in le_rows.iter().enumerate() {
            let mut c = ConstraintFn::new(format!("le{k}")).with_constant(-rhs);
            for (j, &co) in coeffs.iter().enumerate() {
                c = c.linear_term(j, co);
            }
            p.add_constraint(c);
        }
        let nlp_sol = solve(&p).unwrap();

        match (lp_sol.status, nlp_sol.status) {
            (LpStatus::Optimal, NlpStatus::Optimal) => Some((lp_sol.objective, nlp_sol.objective)),
            (LpStatus::Infeasible, NlpStatus::Infeasible) => None,
            (a, b) => panic!("status mismatch: simplex {a:?} vs barrier {b:?}"),
        }
    }

    use hslb_rng::Rng;

    #[test]
    fn barrier_matches_simplex_on_equality_lps() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x6b);
        for case in 0..60 {
            let n = rng.usize_range(2, 4);
            let costs = rng.vec_f64(n, -3.0, 3.0);
            let boxes: Vec<(f64, f64)> = (0..n).map(|_| (0.0, rng.f64_range(1.0, 6.0))).collect();
            // Equality RHS strictly inside the reachable sum range keeps
            // the instance feasible with an interior.
            let max_sum: f64 = boxes.iter().map(|b| b.1).sum();
            let eq_rhs = rng.f64_range(0.1, 0.9) * max_sum;
            if let Some((lp_obj, nlp_obj)) = both_solve(&costs, &boxes, eq_rhs, &[]) {
                assert!(
                    (lp_obj - nlp_obj).abs() < 1e-4 * (1.0 + lp_obj.abs()),
                    "case {case}: simplex {lp_obj} vs barrier {nlp_obj}"
                );
            }
        }
    }

    #[test]
    fn barrier_matches_simplex_with_extra_rows() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x7b);
        for case in 0..60 {
            let n = rng.usize_range(3, 4);
            let costs = rng.vec_f64(n, -2.0, 2.0);
            let boxes: Vec<(f64, f64)> = (0..n).map(|_| (0.0, 4.0)).collect();
            let eq_rhs = rng.f64_range(0.2, 0.8) * 4.0 * n as f64;
            // One extra <= row: first two variables capped.
            let mut coeffs = vec![0.0; n];
            coeffs[0] = 1.0;
            coeffs[1] = 1.0;
            let rows = vec![(coeffs, rng.f64_range(0.5, 1.5) * 4.0)];
            if let Some((lp_obj, nlp_obj)) = both_solve(&costs, &boxes, eq_rhs, &rows) {
                assert!(
                    (lp_obj - nlp_obj).abs() < 1e-4 * (1.0 + lp_obj.abs()),
                    "case {case}: simplex {lp_obj} vs barrier {nlp_obj}"
                );
            }
        }
    }
}
