//! Adaptive centering for the predictor-corrector loop.
//!
//! The affine-scaling predictor measures how much complementarity the
//! pure Newton step could remove (`μ_aff`), and Mehrotra's heuristic
//! turns that into the next centering target `σ·μ`: strong affine
//! progress earns a near-zero σ (take nearly the whole Newton step), a
//! blocked predictor earns σ near 1 (recenter first). The second-order
//! corrector terms computed here are the products of affine deltas that
//! the linearized complementarity rows dropped — adding them back gives
//! the corrector solve its quadratic accuracy at no extra factorization.

use super::Direction;

/// Exponent in Mehrotra's centering heuristic `σ = (μ_aff/μ)^e`: cubing
/// rewards strong affine progress with near-zero centering and punishes a
/// blocked predictor with a near-1 (recentering) target.
pub(crate) const CENTERING_EXPONENT: i32 = 3;
/// Floor on σ: a strictly positive centering target keeps the corrector
/// moving along the central path even when the predictor ran unobstructed.
pub(crate) const SIGMA_MIN: f64 = 1e-6;
/// Cap on σ: the corrector never aims above the current μ.
pub(crate) const SIGMA_MAX: f64 = 0.999;

/// Mehrotra centering parameter from the duality measure before (`mu`)
/// and after (`mu_aff`) the hypothetical affine-scaling step.
pub(crate) fn centering_sigma(mu: f64, mu_aff: f64) -> f64 {
    if mu <= 0.0 {
        return SIGMA_MIN;
    }
    let ratio = (mu_aff / mu).clamp(0.0, 1.0);
    ratio.powi(CENTERING_EXPONENT).clamp(SIGMA_MIN, SIGMA_MAX)
}

/// Largest linear shrink factor one target update may apply. The affine
/// predictor extrapolates linearly and cannot see constraint curvature: an
/// unfloored σ³ update can cut the target by 10³–10⁴ in one decision, and
/// the primal then creeps along the active nonlinear constraint in
/// √slack-sized steps for dozens of iterations.
pub(crate) const MU_LINEAR_SHRINK: f64 = 0.2;
/// Exponent of the superlinear tail `μ → μ^1.5`: once the target is small
/// the floor relaxes faster than the linear factor, restoring Mehrotra's
/// superlinear endgame.
pub(crate) const MU_SUPERLINEAR_EXP: f64 = 1.5;

/// Next centering target: Mehrotra's `σ·μ` proposal, floored by the
/// classic monotone schedule `min(0.2·μ_t, μ_t^1.5)` and kept
/// non-increasing.
pub(crate) fn next_target(mu_target: f64, mu: f64, sigma: f64) -> f64 {
    let floor = (MU_LINEAR_SHRINK * mu_target).min(mu_target.powf(MU_SUPERLINEAR_EXP));
    (sigma * mu).max(floor).min(mu_target)
}

/// Second-order (Mehrotra) corrector terms per complementarity pair, in
/// the same indexing as [`Direction`]: `cc_i = Δλ_aff·Δs_aff` per
/// inequality, `cclo = Δz_aff·Δd_aff` per finite lower bound (`Δd = Δx`),
/// `cchi` per finite upper bound (`Δd = −Δx`). Entries for infinite
/// bounds stay zero because their affine dual deltas are zero.
pub(crate) struct Corrector {
    pub(crate) cc: Vec<f64>,
    pub(crate) cclo: Vec<f64>,
    pub(crate) cchi: Vec<f64>,
}

/// Builds the corrector terms from the affine predictor direction, with
/// each delta scaled by its realizable fraction-to-boundary step length
/// (`ap` primal, `ad` dual). The raw Mehrotra products assume the full
/// affine step is taken; when the boundary caps it to a tiny fraction the
/// raw products are wildly off-scale and poison the corrector direction,
/// while the scaled products are exactly the second-order change the
/// capped step can realize — and reduce to the textbook terms at full
/// steps.
pub(crate) fn corrector_terms(aff: &Direction, ap: f64, ad: f64) -> Corrector {
    let pd = ap * ad;
    Corrector {
        cc: aff
            .dlam
            .iter()
            .zip(&aff.ds)
            .map(|(a, b)| pd * a * b)
            .collect(),
        cclo: aff
            .dzlo
            .iter()
            .zip(&aff.dx)
            .map(|(a, b)| pd * a * b)
            .collect(),
        cchi: aff
            .dzhi
            .iter()
            .zip(&aff.dx)
            .map(|(a, b)| -(pd * a * b))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_rewards_affine_progress() {
        // 10x complementarity reduction -> sigma = 1e-3: nearly pure Newton.
        assert!((centering_sigma(1.0, 0.1) - 1e-3).abs() < 1e-12);
        // Blocked predictor -> recenter.
        assert!((centering_sigma(1.0, 1.0) - SIGMA_MAX).abs() < 1e-12);
    }

    #[test]
    fn sigma_is_clamped() {
        assert_eq!(centering_sigma(1.0, 0.0), SIGMA_MIN);
        // mu_aff beyond mu (a diverging prediction) still caps at SIGMA_MAX.
        assert_eq!(centering_sigma(1.0, 5.0), SIGMA_MAX);
        assert_eq!(centering_sigma(0.0, 1.0), SIGMA_MIN);
    }

    #[test]
    fn corrector_terms_multiply_affine_deltas() {
        let aff = Direction {
            dx: vec![2.0],
            dnu: Vec::new(),
            dlam: vec![3.0],
            dzlo: vec![4.0],
            dzhi: vec![5.0],
            ds: vec![-1.0],
        };
        let corr = corrector_terms(&aff, 1.0, 1.0);
        assert_eq!(corr.cc, vec![-3.0]);
        assert_eq!(corr.cclo, vec![8.0]);
        // Upper-bound distance moves by -dx, hence the sign flip.
        assert_eq!(corr.cchi, vec![-10.0]);
        // A boundary-capped affine step shrinks the products quadratically.
        let capped = corrector_terms(&aff, 0.5, 0.5);
        assert_eq!(capped.cc, vec![-0.75]);
    }
}
