//! Mehrotra predictor-corrector interior-point loop — barrier v2.
//!
//! Replaces the fixed-μ schedule of the legacy loop with a primal-dual
//! method that holds the primal strictly feasible (slacks stay implicit,
//! `s_i = −g_i(x)`) and carries explicit dual iterates: `λ` per
//! inequality, `z` per finite bound, `ν` per equality. Each iteration:
//!
//! 1. factors the condensed KKT system once ([`augmented_system`]),
//! 2. solves it for the affine-scaling predictor (μ̂ = 0),
//! 3. picks σ = (μ_aff/μ)³ from the predicted complementarity
//!    ([`mu_update`]),
//! 4. re-solves the *same factorization* for the corrector (μ̂ = σμ plus
//!    Mehrotra's second-order terms), and
//! 5. takes the longest fraction-to-boundary step that also decreases a
//!    squared-KKT-residual merit ([`line_search`]), falling back to a
//!    pure centering solve when the corrected direction overshoots.
//!
//! Condensing: with diagonal constraint curvature (every `g` here is
//! linear plus univariate terms), eliminating Δλ and Δz reduces the
//! Newton system to
//!
//! ```text
//! [ M  Âᵀ ] [Δx]                M = Σ λᵢ∇²gᵢ + Σ (λᵢ/sᵢ)∇gᵢ∇gᵢᵀ
//! [ Â   0 ] [Δν] = rhs,             + diag(zlo/dlo + zhi/dhi)
//! ```
//!
//! which has exactly the sparsity pattern of the legacy barrier Hessian —
//! the analyzed `SparseKkt` structure is reused verbatim. The dual
//! components are recovered from the linearized complementarity rows
//! after each solve.
//!
//! Warm starts compose unchanged: the repaired parent point and its
//! Mehrotra-seeded μ₀ enter here as the initial primal and the
//! perfectly-centered initial dual scale — not through a side path.

pub(crate) mod augmented_system;
pub(crate) mod line_search;
pub(crate) mod mu_update;

use std::collections::HashMap;

use crate::barrier::{
    barrier_value, finish_with_duals, strictly_inside, BarrierOptions, FactorTally, NlpSolution,
    NlpStatus, DIVERGENCE_LIMIT,
};
use crate::problem::NlpProblem;
use augmented_system::{AugmentedSystem, KktFactor, SystemError};
use hslb_linalg::approx::exactly_zero;
use hslb_linalg::{Matrix, SparseWorkspace};
use hslb_obs::Event;
use line_search::FRACTION_TO_BOUNDARY_TAU;
use mu_update::Corrector;

/// Cap on the perfectly-centered initial duals `μ₀/s`: a slack at the
/// strict-feasibility margin (~1e-8) would otherwise seed a ~1e9 dual and
/// a hopelessly ill-conditioned first system.
const DUAL_INIT_CAP: f64 = 1e8;
/// Relative equality-residual tolerance required at convergence. Warm
/// starts may enter with the loose projection residual (1e-5·scale); the
/// Newton corrections pull it under this within the first steps.
const EQ_CONVERGENCE_TOL: f64 = 1e-8;
/// Relative dual-residual (stationarity) tolerance required at
/// convergence, on top of the legacy gap test `μ·count ≤ gap_tol`.
const DUAL_CONVERGENCE_TOL: f64 = 1e-7;
/// Centrality band: the target μ may only decrease while every
/// complementarity product sits within `[μ/RATIO, μ·RATIO]`. Chasing a
/// lower target from an off-center iterate makes the corrector fight the
/// centering terms and cycle (observed on wide boxes like `t ∈ [0, 1e6]`).
const CENTRALITY_RATIO: f64 = 10.0;
/// Residual leash on μ decreases: primal/dual infeasibility (relative to
/// scale) must stay within this multiple of the current target, so the
/// gap never races ahead of feasibility — the standard infeasible-IPM
/// neighborhood coupling.
const MU_GATE_RESIDUAL_FRAC: f64 = 1.0;

/// Primal-dual iterate. `x` lives in the full variable space (pinned
/// coordinates stay at their pins); duals are indexed by reduced objects:
/// `lam` per inequality, `zlo`/`zhi` per free column (zero where the
/// corresponding bound is infinite), `nu` per equality.
struct State {
    x: Vec<f64>,
    lam: Vec<f64>,
    zlo: Vec<f64>,
    zhi: Vec<f64>,
    nu: Vec<f64>,
}

/// One search direction in the same indexing as [`State`], plus the
/// linearized slack change `ds = −∇gᵀ·dx`.
pub(crate) struct Direction {
    pub(crate) dx: Vec<f64>,
    pub(crate) dnu: Vec<f64>,
    pub(crate) dlam: Vec<f64>,
    pub(crate) dzlo: Vec<f64>,
    pub(crate) dzhi: Vec<f64>,
    pub(crate) ds: Vec<f64>,
}

/// Problem evaluation at one primal point.
struct Eval {
    /// Slacks `s_i = −g_i(x)`, strictly positive.
    slack: Vec<f64>,
    /// Constraint gradients restricted to the free columns.
    grads: Vec<Vec<f64>>,
    /// Equality residuals `A·x − b`.
    r_eq: Vec<f64>,
}

/// Problem-shape data fixed across the loop.
struct Ctx<'p> {
    p: &'p NlpProblem,
    free: &'p [usize],
    /// Objective coefficients over the free columns.
    c_free: Vec<f64>,
    /// Bounds per free column (±inf where absent).
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Equality matrix over the free columns.
    a_eq: Matrix,
    /// Number of complementarity pairs (inequalities + finite bounds).
    count: usize,
    /// Scale for the equality-residual tolerance.
    eq_scale: f64,
}

impl<'p> Ctx<'p> {
    /// Evaluates slacks, restricted gradients and equality residuals,
    /// failing fast on anything non-finite or boundary-violating.
    fn eval(&self, x: &[f64]) -> Result<Eval, SystemError> {
        let k = self.free.len();
        let mut slack = Vec::with_capacity(self.p.num_constraints());
        let mut grads = Vec::with_capacity(self.p.num_constraints());
        for c in self.p.constraints() {
            let g = c.eval(x);
            if !g.is_finite() {
                return Err(SystemError::NonFinite("constraint residual"));
            }
            if g >= 0.0 {
                // The line search only accepts strictly feasible trials, so
                // a boundary hit here means the invariant broke numerically.
                return Err(SystemError::NonFinite("nonpositive slack"));
            }
            let full = c.gradient(x);
            let mut row = vec![0.0; k];
            for (col, &j) in self.free.iter().enumerate() {
                if !full[j].is_finite() {
                    return Err(SystemError::NonFinite("constraint gradient"));
                }
                row[col] = full[j];
            }
            slack.push(-g);
            grads.push(row);
        }
        let r_eq: Vec<f64> = self.p.equalities().iter().map(|e| e.residual(x)).collect();
        if !r_eq.iter().all(|v| v.is_finite()) {
            return Err(SystemError::NonFinite("equality residual"));
        }
        Ok(Eval { slack, grads, r_eq })
    }

    /// Distances to the finite bounds per free column. Entries for
    /// infinite bounds hold a `1.0` placeholder — always paired with a
    /// zero dual and guarded by `is_finite` checks, so they contribute
    /// nothing anywhere.
    fn dists(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let k = self.free.len();
        let mut dlo = vec![1.0; k];
        let mut dhi = vec![1.0; k];
        for (c, &j) in self.free.iter().enumerate() {
            if self.lo[c].is_finite() {
                dlo[c] = x[j] - self.lo[c];
            }
            if self.hi[c].is_finite() {
                dhi[c] = self.hi[c] - x[j];
            }
        }
        (dlo, dhi)
    }

    /// Average complementarity μ over all pairs.
    fn mu_of(&self, st: &State, ev: &Eval) -> f64 {
        let (dlo, dhi) = self.dists(&st.x);
        let mut sum = 0.0;
        for (lam, s) in st.lam.iter().zip(&ev.slack) {
            sum += lam * s;
        }
        for c in 0..self.free.len() {
            if self.lo[c].is_finite() {
                sum += st.zlo[c] * dlo[c];
            }
            if self.hi[c].is_finite() {
                sum += st.zhi[c] * dhi[c];
            }
        }
        sum / self.count as f64
    }

    /// Dual safeguard: any complementarity product that leaves the
    /// [`CENTRALITY_RATIO`] neighborhood of the target gets its dual reset
    /// to the primal barrier multiplier `μ̂/s` (resp. `μ̂/d` for bounds).
    /// A drifted dual makes its `λ/s` pivot in the condensed matrix
    /// disagree with the barrier curvature `μ̂/s²`, and the Newton
    /// direction then rides tangentially along the constraint instead of
    /// lifting off it. The reset makes the next direction the exact
    /// damped-Newton barrier direction — the legacy loop's recovery — and
    /// the untouched in-band duals resume Mehrotra stepping immediately.
    fn recenter_duals(&self, st: &mut State, ev: &Eval, mu_hat: f64) -> bool {
        let (dlo, dhi) = self.dists(&st.x);
        let mut changed = false;
        let mut recenter = |dual: &mut f64, dist: f64| {
            let product = *dual * dist;
            if product > CENTRALITY_RATIO * mu_hat || product * CENTRALITY_RATIO < mu_hat {
                *dual = mu_hat / dist;
                changed = true;
            }
        };
        for (lam, &s) in st.lam.iter_mut().zip(&ev.slack) {
            recenter(lam, s);
        }
        for c in 0..self.free.len() {
            if self.lo[c].is_finite() {
                recenter(&mut st.zlo[c], dlo[c]);
            }
            if self.hi[c].is_finite() {
                recenter(&mut st.zhi[c], dhi[c]);
            }
        }
        changed
    }

    /// Smallest and largest complementarity product across all pairs —
    /// the centrality measure gating μ decreases.
    fn prod_range(&self, st: &State, ev: &Eval) -> (f64, f64) {
        let (dlo, dhi) = self.dists(&st.x);
        let mut min = f64::INFINITY;
        let mut max = 0.0_f64;
        let mut see = |p: f64| {
            min = min.min(p);
            max = max.max(p);
        };
        for (lam, s) in st.lam.iter().zip(&ev.slack) {
            see(lam * s);
        }
        for c in 0..self.free.len() {
            if self.lo[c].is_finite() {
                see(st.zlo[c] * dlo[c]);
            }
            if self.hi[c].is_finite() {
                see(st.zhi[c] * dhi[c]);
            }
        }
        (min, max)
    }

    /// Dual (stationarity) residual over the free columns:
    /// `r_d = c + Σ λᵢ∇gᵢ + Âᵀν − zlo + zhi`.
    fn r_dual(&self, st: &State, ev: &Eval) -> Vec<f64> {
        let k = self.free.len();
        let mut r = self.c_free.clone();
        for (i, gi) in ev.grads.iter().enumerate() {
            let lam = st.lam[i];
            for c in 0..k {
                r[c] += lam * gi[c];
            }
        }
        if !st.nu.is_empty() {
            for (rc, atn) in r.iter_mut().zip(self.a_eq.matvec_transposed(&st.nu)) {
                *rc += atn;
            }
        }
        for (c, rc) in r.iter_mut().enumerate().take(k) {
            if self.lo[c].is_finite() {
                *rc -= st.zlo[c];
            }
            if self.hi[c].is_finite() {
                *rc += st.zhi[c];
            }
        }
        r
    }

    /// Directional derivative `∇Φ_μ̂ᵀ·dx` of the barrier merit along the
    /// primal direction, for the Armijo test.
    fn barrier_slope(&self, st: &State, ev: &Eval, mu_hat: f64, dx: &[f64]) -> f64 {
        let (dlo, dhi) = self.dists(&st.x);
        let mut slope = 0.0;
        for (c, &dxc) in dx.iter().enumerate() {
            let mut g = self.c_free[c];
            if self.lo[c].is_finite() {
                g -= mu_hat / dlo[c];
            }
            if self.hi[c].is_finite() {
                g += mu_hat / dhi[c];
            }
            slope += g * dxc;
        }
        for (gi, s) in ev.grads.iter().zip(&ev.slack) {
            let gdx: f64 = gi.iter().zip(dx).map(|(a, b)| a * b).sum();
            slope += (mu_hat / s) * gdx;
        }
        slope
    }

    /// Condensed primal system matrix M (see module docs).
    fn condensed_matrix(&self, st: &State, ev: &Eval) -> Matrix {
        let k = self.free.len();
        let mut m = Matrix::zeros(k, k);
        let mut curv_full = vec![0.0; self.p.num_vars()];
        for (i, c) in self.p.constraints().iter().enumerate() {
            let w = st.lam[i] / ev.slack[i];
            let gi = &ev.grads[i];
            for a in 0..k {
                if exactly_zero(gi[a]) {
                    continue;
                }
                for b in a..k {
                    if !exactly_zero(gi[b]) {
                        let v = w * gi[a] * gi[b];
                        m[(a, b)] += v;
                        if a != b {
                            m[(b, a)] += v;
                        }
                    }
                }
            }
            c.add_hessian_diag(&st.x, &mut curv_full, st.lam[i]);
        }
        let (dlo, dhi) = self.dists(&st.x);
        for (c, &j) in self.free.iter().enumerate() {
            let mut d = curv_full[j];
            if self.lo[c].is_finite() {
                d += st.zlo[c] / dlo[c];
            }
            if self.hi[c].is_finite() {
                d += st.zhi[c] / dhi[c];
            }
            m[(c, c)] += d;
        }
        m
    }

    /// Right-hand side of the condensed system at centering target
    /// `mu_hat`, with optional second-order corrector terms.
    fn rhs(
        &self,
        st: &State,
        ev: &Eval,
        r_d: &[f64],
        mu_hat: f64,
        corr: Option<&Corrector>,
    ) -> (Vec<f64>, Vec<f64>) {
        let k = self.free.len();
        let (dlo, dhi) = self.dists(&st.x);
        let mut rx: Vec<f64> = r_d.iter().map(|v| -v).collect();
        for (i, gi) in ev.grads.iter().enumerate() {
            let cc = corr.map_or(0.0, |co| co.cc[i]);
            let t = (mu_hat - st.lam[i] * ev.slack[i] - cc) / ev.slack[i];
            for c in 0..k {
                rx[c] -= gi[c] * t;
            }
        }
        for c in 0..k {
            if self.lo[c].is_finite() {
                let cclo = corr.map_or(0.0, |co| co.cclo[c]);
                rx[c] += (mu_hat - st.zlo[c] * dlo[c] - cclo) / dlo[c];
            }
            if self.hi[c].is_finite() {
                let cchi = corr.map_or(0.0, |co| co.cchi[c]);
                rx[c] -= (mu_hat - st.zhi[c] * dhi[c] - cchi) / dhi[c];
            }
        }
        let re: Vec<f64> = ev.r_eq.iter().map(|v| -v).collect();
        (rx, re)
    }

    /// Recovers the dual components of a direction from the primal solve
    /// via the linearized complementarity rows.
    fn recover(
        &self,
        st: &State,
        ev: &Eval,
        dx: Vec<f64>,
        dnu: Vec<f64>,
        mu_hat: f64,
        corr: Option<&Corrector>,
    ) -> Direction {
        let k = self.free.len();
        let m_in = ev.slack.len();
        let (dlo, dhi) = self.dists(&st.x);
        let mut ds = vec![0.0; m_in];
        let mut dlam = vec![0.0; m_in];
        for i in 0..m_in {
            let gi = &ev.grads[i];
            let gdx: f64 = gi.iter().zip(&dx).map(|(a, b)| a * b).sum();
            ds[i] = -gdx;
            let cc = corr.map_or(0.0, |co| co.cc[i]);
            dlam[i] = (mu_hat - st.lam[i] * ev.slack[i] - cc + st.lam[i] * gdx) / ev.slack[i];
        }
        let mut dzlo = vec![0.0; k];
        let mut dzhi = vec![0.0; k];
        for c in 0..k {
            if self.lo[c].is_finite() {
                let cclo = corr.map_or(0.0, |co| co.cclo[c]);
                dzlo[c] = (mu_hat - st.zlo[c] * dlo[c] - cclo - st.zlo[c] * dx[c]) / dlo[c];
            }
            if self.hi[c].is_finite() {
                let cchi = corr.map_or(0.0, |co| co.cchi[c]);
                dzhi[c] = (mu_hat - st.zhi[c] * dhi[c] - cchi + st.zhi[c] * dx[c]) / dhi[c];
            }
        }
        Direction {
            dx,
            dnu,
            dlam,
            dzlo,
            dzhi,
            ds,
        }
    }

    /// Fraction-to-boundary step caps: primal (slacks + box distances)
    /// and dual (λ, z) blocks separately, Mehrotra-style.
    fn step_lengths(&self, st: &State, ev: &Eval, dir: &Direction) -> (f64, f64) {
        let (dlo, dhi) = self.dists(&st.x);
        let mut primal: Vec<(f64, f64)> = ev
            .slack
            .iter()
            .copied()
            .zip(dir.ds.iter().copied())
            .collect();
        let mut dual: Vec<(f64, f64)> = st
            .lam
            .iter()
            .copied()
            .zip(dir.dlam.iter().copied())
            .collect();
        for c in 0..self.free.len() {
            if self.lo[c].is_finite() {
                primal.push((dlo[c], dir.dx[c]));
                dual.push((st.zlo[c], dir.dzlo[c]));
            }
            if self.hi[c].is_finite() {
                primal.push((dhi[c], -dir.dx[c]));
                dual.push((st.zhi[c], dir.dzhi[c]));
            }
        }
        (
            line_search::max_step(primal.into_iter(), FRACTION_TO_BOUNDARY_TAU),
            line_search::max_step(dual.into_iter(), FRACTION_TO_BOUNDARY_TAU),
        )
    }

    /// Duality measure after the hypothetical affine step `(ap, ad)`,
    /// using the linearized slacks.
    fn predicted_mu(&self, st: &State, ev: &Eval, dir: &Direction, ap: f64, ad: f64) -> f64 {
        let (dlo, dhi) = self.dists(&st.x);
        let mut sum = 0.0;
        for i in 0..ev.slack.len() {
            sum += (st.lam[i] + ad * dir.dlam[i]) * (ev.slack[i] + ap * dir.ds[i]);
        }
        for c in 0..self.free.len() {
            if self.lo[c].is_finite() {
                sum += (st.zlo[c] + ad * dir.dzlo[c]) * (dlo[c] + ap * dir.dx[c]);
            }
            if self.hi[c].is_finite() {
                sum += (st.zhi[c] + ad * dir.dzhi[c]) * (dhi[c] - ap * dir.dx[c]);
            }
        }
        (sum / self.count as f64).max(0.0)
    }

    /// The iterate after a scaled step: primal moved by `ap·dx`, duals by
    /// `ad` times their deltas.
    fn stepped(&self, st: &State, dir: &Direction, ap: f64, ad: f64) -> State {
        let mut x = st.x.clone();
        for (c, &j) in self.free.iter().enumerate() {
            x[j] += ap * dir.dx[c];
        }
        State {
            x,
            lam: st
                .lam
                .iter()
                .zip(&dir.dlam)
                .map(|(v, d)| v + ad * d)
                .collect(),
            zlo: st
                .zlo
                .iter()
                .zip(&dir.dzlo)
                .map(|(v, d)| v + ad * d)
                .collect(),
            zhi: st
                .zhi
                .iter()
                .zip(&dir.dzhi)
                .map(|(v, d)| v + ad * d)
                .collect(),
            nu: st
                .nu
                .iter()
                .zip(&dir.dnu)
                .map(|(v, d)| v + ad * d)
                .collect(),
        }
    }
}

/// One full direction: condensed rhs, shared-factor solve, dual recovery.
fn solve_direction(
    ctx: &Ctx,
    factor: &KktFactor,
    st: &State,
    ev: &Eval,
    r_d: &[f64],
    mu_hat: f64,
    corr: Option<&Corrector>,
) -> Result<Direction, SystemError> {
    let (rx, re) = ctx.rhs(st, ev, r_d, mu_hat, corr);
    let (dx, dnu) = factor.solve(&rx, &re)?;
    let dir = ctx.recover(st, ev, dx, dnu, mu_hat, corr);
    if !dir
        .dlam
        .iter()
        .chain(&dir.dzlo)
        .chain(&dir.dzhi)
        .chain(&dir.ds)
        .all(|v| v.is_finite())
    {
        return Err(SystemError::NonFinite("recovered dual step"));
    }
    Ok(dir)
}

/// One barrier-merit line search along `dir`; returns the accepted next
/// state, or `None` when the backtracking budget runs out.
///
/// Both blocks scale with the accepted θ (primal by `θ·ap_max`, duals by
/// `θ·ad_max`): the linear dual update lands the complementarity products
/// on μ̂ only under the full primal step, so taking a full dual step after
/// a curvature-damped primal one would jump the duals to values consistent
/// with a point θ⁻¹ times further along and crush the products.
///
/// A trial step must satisfy three admissibility tests before the Armijo
/// merit comparison: strict primal feasibility, a finite barrier merit,
/// and the wide central-path neighborhood — every *true* (nonlinear)
/// complementarity product of the candidate stays above
/// `μ̂/CENTRALITY_RATIO`. The last is the load-bearing one on curved
/// constraints: the barrier merit alone happily trades a crushed slack for
/// objective progress (the log penalty is weak), and a crushed product
/// mis-scales the next condensed matrix so badly that the solver creeps
/// along the constraint for hundreds of iterations.
fn attempt(
    ctx: &Ctx,
    st: &State,
    ev: &Eval,
    dir: &Direction,
    mu_hat: f64,
    tally: &mut FactorTally,
) -> Option<State> {
    let (ap_max, ad_max) = ctx.step_lengths(st, ev, dir);
    let phi0 = barrier_value(ctx.p, &st.x, mu_hat, ctx.free);
    let slope = ctx.barrier_slope(st, ev, mu_hat, &dir.dx);
    // Products may sit on the band edge (the loop-top recentering leaves
    // in-band products untouched); halving headroom keeps a θ → 0 trial
    // admissible so an edge state can never dead-lock the search.
    let (cur_min, _) = ctx.prod_range(st, ev);
    let floor = (mu_hat / CENTRALITY_RATIO).min(0.5 * cur_min);
    let theta = line_search::backtrack(
        phi0,
        slope,
        ap_max,
        |theta| {
            let cand = ctx.stepped(st, dir, theta * ap_max, theta * ad_max);
            if !strictly_inside(ctx.p, &cand.x, ctx.free) {
                return None;
            }
            let cand_ev = ctx.eval(&cand.x).ok()?;
            let (cand_min, _) = ctx.prod_range(&cand, &cand_ev);
            if cand_min < floor {
                return None;
            }
            let phi = barrier_value(ctx.p, &cand.x, mu_hat, ctx.free);
            phi.is_finite().then_some(phi)
        },
        &mut tally.line_search_backtracks,
    )?;
    Some(ctx.stepped(st, dir, theta * ap_max, theta * ad_max))
}

/// Wraps up at the current iterate: `λ` is the converged dual estimate.
fn converged(ctx: &Ctx, st: State, newton_iters: usize) -> NlpSolution {
    finish_with_duals(ctx.p, st.x, &st.lam, newton_iters)
}

/// Typed-error exit: the augmented system saw a non-finite value or an
/// unfactorable matrix. End the solve cleanly at the current iterate —
/// never spin — reporting the cut-short budget.
fn bail(ctx: &Ctx, st: State, newton_iters: usize, _err: SystemError) -> NlpSolution {
    let mut out = finish_with_duals(ctx.p, st.x, &st.lam, newton_iters);
    out.status = NlpStatus::IterationLimit;
    out
}

fn diverged(p: &NlpProblem, st: State, newton_iters: usize) -> NlpSolution {
    NlpSolution {
        status: NlpStatus::Unbounded,
        objective: f64::NEG_INFINITY,
        multipliers: vec![0.0; p.num_constraints()],
        x: st.x,
        newton_iters,
        warm_started: false,
        factorizations: 0,
        fill_nnz: 0,
        predictor_steps: 0,
        corrector_steps: 0,
        line_search_backtracks: 0,
    }
}

/// The predictor-corrector loop from a strictly feasible start. Arguments
/// mirror the legacy `barrier_loop`; `mu0` seeds the perfectly-centered
/// initial duals, and `early_exit` is phase 1's `(var, threshold)` stop.
#[allow(clippy::too_many_arguments)] // mirrors barrier_loop: problem + accumulators + scratch
pub(crate) fn run(
    p: &NlpProblem,
    x: Vec<f64>,
    free: &[usize],
    mu0: f64,
    opts: &BarrierOptions,
    newton_total: &mut usize,
    tally: &mut FactorTally,
    scratch: &mut SparseWorkspace,
    early_exit: Option<(usize, f64)>,
) -> NlpSolution {
    let k = free.len();
    let m_in = p.num_constraints();
    let m_eq = p.equalities().len();
    let col_of: HashMap<usize, usize> = free.iter().enumerate().map(|(c, &j)| (j, c)).collect();
    let mut a_eq = Matrix::zeros(m_eq, k);
    for (r, e) in p.equalities().iter().enumerate() {
        for &(v, co) in &e.coeffs {
            if let Some(&c) = col_of.get(&v) {
                a_eq[(r, c)] += co;
            }
        }
    }
    let lo: Vec<f64> = free.iter().map(|&j| p.lowers()[j]).collect();
    let hi: Vec<f64> = free.iter().map(|&j| p.uppers()[j]).collect();
    let count = m_in
        + lo.iter().filter(|v| v.is_finite()).count()
        + hi.iter().filter(|v| v.is_finite()).count();
    let eq_scale = p
        .equalities()
        .iter()
        .map(|e| e.rhs.abs() + e.coeffs.iter().map(|&(_, co)| co.abs()).sum::<f64>())
        .fold(1.0, f64::max);
    let ctx = Ctx {
        p,
        free,
        c_free: free.iter().map(|&j| p.costs()[j]).collect(),
        lo,
        hi,
        a_eq,
        count,
        eq_scale,
    };
    let mut sys = AugmentedSystem::new(p, &col_of, &ctx.a_eq, k, m_eq, opts, scratch);

    // Perfectly centered initial duals: every complementarity product
    // starts at exactly μ₀ (capped), so the first predictor sees the true
    // μ₀ and parent complementarity enters purely through the warm μ₀.
    let mut st = State {
        x,
        lam: vec![0.0; m_in],
        zlo: vec![0.0; k],
        zhi: vec![0.0; k],
        nu: vec![0.0; m_eq],
    };
    match ctx.eval(&st.x) {
        Ok(ev) => {
            for (lam, s) in st.lam.iter_mut().zip(&ev.slack) {
                *lam = (mu0 / s).min(DUAL_INIT_CAP);
            }
            let (dlo, dhi) = ctx.dists(&st.x);
            for c in 0..k {
                if ctx.lo[c].is_finite() {
                    st.zlo[c] = (mu0 / dlo[c]).min(DUAL_INIT_CAP);
                }
                if ctx.hi[c].is_finite() {
                    st.zhi[c] = (mu0 / dhi[c]).min(DUAL_INIT_CAP);
                }
            }
        }
        Err(err) => return bail(&ctx, st, *newton_total, err),
    }

    // The centering target: monotone non-increasing. Newton iterations
    // chase a FIXED target until the iterate is centered and feasible
    // enough, and only then does the Mehrotra predictor ratchet it down —
    // re-deriving the target from the products every iteration lets an
    // off-center iterate drag it up and cycle.
    let mut mu_target = mu0;
    // The target never needs to fall below the gap test's exit level: a
    // μ within one centrality band of this floor already passes
    // `μ·count ≤ gap_tol`. Chasing a deeper target is pure downside — it
    // is unattainable once the primal has hit its strict-interior limit,
    // and the band safeguard would fight stationarity forever over it.
    let target_floor = opts.gap_tol / (CENTRALITY_RATIO * ctx.count as f64);

    for _iter in 0..opts.max_newton {
        let ev = match ctx.eval(&st.x) {
            Ok(ev) => ev,
            Err(err) => return bail(&ctx, st, *newton_total, err),
        };
        // Convergence is judged on the raw iterate, before any dual
        // safeguard: near the end the target can sit a band below the
        // converged μ, and recentering first would wreck the (already
        // acceptable) stationarity residual on the exit iteration.
        let mut mu = ctx.mu_of(&st, &ev);
        let mut r_d = ctx.r_dual(&st, &ev);
        let gap_ok = mu * ctx.count as f64 <= opts.gap_tol;
        let r_eq_norm = ev.r_eq.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let eq_ok = r_eq_norm <= EQ_CONVERGENCE_TOL * ctx.eq_scale;
        let dual_scale = |st: &State| {
            1.0 + ctx.c_free.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
                + st.lam
                    .iter()
                    .chain(&st.zlo)
                    .chain(&st.zhi)
                    .fold(0.0_f64, |m, &v| m.max(v))
        };
        let r_d_norm = r_d.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let dual_ok = r_d_norm <= DUAL_CONVERGENCE_TOL * dual_scale(&st);
        if gap_ok && eq_ok && dual_ok {
            return converged(&ctx, st, *newton_total);
        }
        if ctx.recenter_duals(&mut st, &ev, mu_target) {
            mu = ctx.mu_of(&st, &ev);
            r_d = ctx.r_dual(&st, &ev);
        }
        let dual_scale = dual_scale(&st);
        let r_d_norm = r_d.iter().fold(0.0_f64, |m, v| m.max(v.abs()));

        *newton_total += 1;
        let m_mat = ctx.condensed_matrix(&st, &ev);
        let factor = match sys.factor(&m_mat, &ctx.a_eq, tally) {
            Ok(f) => f,
            Err(err) => return bail(&ctx, st, *newton_total, err),
        };

        // Affine-scaling predictor: full Newton toward μ̂ = 0. Its step
        // lengths price how much complementarity the pure Newton step can
        // remove; its deltas feed the second-order corrector terms.
        let aff = match solve_direction(&ctx, &factor, &st, &ev, &r_d, 0.0, None) {
            Ok(d) => d,
            Err(err) => return bail(&ctx, st, *newton_total, err),
        };
        tally.predictor_steps += 1;
        let (ap_aff, ad_aff) = ctx.step_lengths(&st, &ev, &aff);
        let mu_aff = ctx.predicted_mu(&st, &ev, &aff, ap_aff, ad_aff);
        let sigma = mu_update::centering_sigma(mu, mu_aff);

        // Ratchet the target down only from inside the central-path
        // neighborhood: products within the centrality band and both
        // infeasibilities commensurate with the target.
        let (prod_min, prod_max) = ctx.prod_range(&st, &ev);
        let centered =
            prod_max <= CENTRALITY_RATIO * mu_target && prod_min * CENTRALITY_RATIO >= mu_target;
        let residuals_leashed = r_d_norm
            <= (DUAL_CONVERGENCE_TOL + MU_GATE_RESIDUAL_FRAC * mu_target) * dual_scale
            && r_eq_norm <= (EQ_CONVERGENCE_TOL + MU_GATE_RESIDUAL_FRAC * mu_target) * ctx.eq_scale;
        if centered && residuals_leashed {
            mu_target =
                mu_update::next_target(mu_target, mu, sigma).max(target_floor.min(mu_target));
        }
        let mu_hat = mu_target;
        opts.trace.emit(|| Event::BarrierMu { mu: mu_hat, sigma });

        // Corrector: recenter to the target with the second-order terms,
        // reusing the factorization.
        let corr = mu_update::corrector_terms(&aff, ap_aff, ad_aff);
        let dir = match solve_direction(&ctx, &factor, &st, &ev, &r_d, mu_hat, Some(&corr)) {
            Ok(d) => d,
            Err(err) => return bail(&ctx, st, *newton_total, err),
        };
        tally.corrector_steps += 1;

        let mut next = attempt(&ctx, &st, &ev, &dir, mu_hat, tally);
        if next.is_none() {
            // The corrected direction can overshoot (its second-order
            // terms are no descent guarantee); a pure centering solve on
            // the same factorization is the exact Newton direction for the
            // σμ KKT system and must locally decrease the merit.
            let rescue = match solve_direction(&ctx, &factor, &st, &ev, &r_d, mu_hat, None) {
                Ok(d) => d,
                Err(err) => return bail(&ctx, st, *newton_total, err),
            };
            tally.corrector_steps += 1;
            next = attempt(&ctx, &st, &ev, &rescue, mu_hat, tally);
        }
        let Some(accepted) = next else {
            // Stalled: both directions exhausted the backtracking budget.
            break;
        };
        st = accepted;

        if st.x.iter().any(|v| v.abs() > DIVERGENCE_LIMIT) {
            return diverged(p, st, *newton_total);
        }
        if let Some((var, threshold)) = early_exit {
            if st.x[var] < threshold {
                return converged(&ctx, st, *newton_total);
            }
        }
    }

    // Stall or iteration cap: report Optimal only when the gap actually
    // closed (the per-step merit noise at tiny μ can block the final dual
    // cleanup; the least-squares refinement recovers the duals from x).
    let gap_closed = match ctx.eval(&st.x) {
        Ok(ev) => ctx.mu_of(&st, &ev) * ctx.count as f64 <= opts.gap_tol,
        Err(_) => false,
    };
    let mut out = converged(&ctx, st, *newton_total);
    if !gap_closed {
        out.status = NlpStatus::IterationLimit;
    }
    out
}
