//! Factor-once-per-iteration KKT backend for the predictor-corrector loop.
//!
//! One MPC iteration factors the condensed quasidefinite system
//!
//! ```text
//! [ M  Âᵀ ] [Δx]   [ rhs_x ]
//! [ Â   0 ] [Δν] = [ rhs_eq ]
//! ```
//!
//! once and reuses the factorization for every right-hand side of the
//! iteration: the affine-scaling predictor, the centering corrector, and
//! (rarely) the pure-centering rescue — up to three solves per
//! factorization instead of one factorization per solve. Backends mirror
//! the legacy loop: dense Cholesky/LU below the sparse crossover, the
//! analyzed [`SparseKkt`] pattern above it (M has exactly the legacy
//! barrier Hessian's sparsity, so the symbolic analysis is shared).
//!
//! Assembly and solves fail fast on non-finite input with a typed
//! [`SystemError`]: hostile-but-valid coefficients (~1e17, reachable
//! through the wire front) overflow constraint evaluations to inf/NaN,
//! and the solve must then end cleanly at its current iterate — never
//! spin. This extends the non-finite fast-fail that
//! `Cholesky::new_regularized` gained for the same reason.

use crate::barrier::{BarrierOptions, FactorTally, SparseKkt, HESS_CHOL_REG, KKT_REG};
use crate::problem::NlpProblem;
use hslb_linalg::{Cholesky, Lu, Matrix, SparseCholesky, SparseLu, SparseWorkspace};

/// Typed failure of the augmented system. Callers terminate the solve
/// cleanly at their best iterate; they never retry the same system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SystemError {
    /// A non-finite (or sign-invalid) value reached assembly, a residual,
    /// or a solved step; the label names which quantity.
    NonFinite(&'static str),
    /// Both the sparse and the dense factorization failed numerically.
    Factorization,
}

/// The per-solve KKT structure: symbolic analysis (sparse path) done once,
/// numeric factorization redone per iteration via [`factor`].
///
/// [`factor`]: AugmentedSystem::factor
pub(crate) struct AugmentedSystem<'a> {
    sparse: Option<SparseKkt<'a>>,
    k: usize,
    m_eq: usize,
}

impl<'a> AugmentedSystem<'a> {
    /// Chooses the backend and (on the sparse path) runs the symbolic
    /// analysis once. A failed analysis silently degrades to dense,
    /// matching the legacy loop.
    pub(crate) fn new(
        p: &NlpProblem,
        col_of: &std::collections::HashMap<usize, usize>,
        a_eq: &Matrix,
        k: usize,
        m_eq: usize,
        opts: &BarrierOptions,
        scratch: &'a mut SparseWorkspace,
    ) -> AugmentedSystem<'a> {
        let dim = if m_eq == 0 { k } else { k + m_eq };
        let sparse = if opts.backend.use_sparse(dim) {
            SparseKkt::build(p, col_of, a_eq, k, m_eq, scratch)
        } else {
            None
        };
        AugmentedSystem { sparse, k, m_eq }
    }

    /// Factors the current condensed matrix `m` once; the returned
    /// [`KktFactor`] then serves every solve of the iteration.
    pub(crate) fn factor(
        &mut self,
        m: &Matrix,
        a_eq: &Matrix,
        tally: &mut FactorTally,
    ) -> Result<KktFactor, SystemError> {
        for i in 0..self.k {
            for j in 0..self.k {
                if !m[(i, j)].is_finite() {
                    return Err(SystemError::NonFinite("condensed KKT matrix"));
                }
            }
        }
        if let Some(sk) = self.sparse.as_mut() {
            sk.fill(m, a_eq);
            if self.m_eq == 0 {
                if let Some(sym) = sk.chol.as_ref() {
                    if let Ok((f, _)) =
                        SparseCholesky::factorize_regularized(&sk.mat, sym, HESS_CHOL_REG, sk.ws)
                    {
                        tally.factorizations += 1;
                        tally.fill_nnz += f.fill_nnz() as u64;
                        return Ok(KktFactor::SparseChol(f));
                    }
                }
            } else if let Some(sym) = sk.lu.as_ref() {
                if let Ok(f) = SparseLu::factorize(&sk.mat, sym, sk.ws) {
                    tally.factorizations += 1;
                    tally.fill_nnz += f.fill_nnz() as u64;
                    return Ok(KktFactor::SparseLu(f));
                }
            }
            // Numeric sparse failure: degrade to the dense factorization
            // below, the same ladder the legacy loop descends.
        }
        if self.m_eq == 0 {
            match Cholesky::new_regularized(m, HESS_CHOL_REG) {
                Ok((ch, _)) => Ok(KktFactor::DenseChol(ch)),
                Err(_) => Err(SystemError::Factorization),
            }
        } else {
            let (k, m_eq) = (self.k, self.m_eq);
            let dim = k + m_eq;
            let mut kkt = Matrix::zeros(dim, dim);
            for i in 0..k {
                for j in 0..k {
                    kkt[(i, j)] = m[(i, j)];
                }
                // Tiny primal regularization keeps the system solvable when
                // M is singular on the null-space boundary.
                kkt[(i, i)] += KKT_REG * (1.0 + m[(i, i)].abs());
            }
            for r in 0..m_eq {
                for c in 0..k {
                    kkt[(k + r, c)] = a_eq[(r, c)];
                    kkt[(c, k + r)] = a_eq[(r, c)];
                }
                // Small dual regularization for dependent rows.
                kkt[(k + r, k + r)] = -KKT_REG;
            }
            match Lu::new(&kkt) {
                Ok(lu) => Ok(KktFactor::DenseLu(lu)),
                Err(_) => Err(SystemError::Factorization),
            }
        }
    }
}

/// One iteration's factored KKT system; each solve is a cheap pair of
/// triangular substitutions against the shared factorization.
pub(crate) enum KktFactor {
    DenseChol(Cholesky),
    DenseLu(Lu),
    SparseChol(SparseCholesky),
    SparseLu(SparseLu),
}

impl KktFactor {
    /// Solves for `(Δx, Δν)`; fails fast when the right-hand side or the
    /// computed step carries a non-finite value.
    pub(crate) fn solve(
        &self,
        rhs_x: &[f64],
        rhs_eq: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>), SystemError> {
        if !rhs_x.iter().chain(rhs_eq).all(|v| v.is_finite()) {
            return Err(SystemError::NonFinite("KKT right-hand side"));
        }
        let (dx, dnu) = match self {
            KktFactor::DenseChol(ch) => (ch.solve(rhs_x), Vec::new()),
            KktFactor::SparseChol(ch) => (ch.solve(rhs_x), Vec::new()),
            KktFactor::DenseLu(lu) => {
                let mut rhs = rhs_x.to_vec();
                rhs.extend_from_slice(rhs_eq);
                split_primal_dual(lu.solve(&rhs), rhs_x.len())
            }
            KktFactor::SparseLu(lu) => {
                let mut rhs = rhs_x.to_vec();
                rhs.extend_from_slice(rhs_eq);
                split_primal_dual(lu.solve(&rhs), rhs_x.len())
            }
        };
        if !dx.iter().chain(&dnu).all(|v| v.is_finite()) {
            return Err(SystemError::NonFinite("Newton step"));
        }
        Ok((dx, dnu))
    }
}

fn split_primal_dual(mut sol: Vec<f64>, k: usize) -> (Vec<f64>, Vec<f64>) {
    let dnu = sol[k..].to_vec();
    sol.truncate(k);
    (sol, dnu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_system(k: usize, m_eq: usize) -> AugmentedSystem<'static> {
        AugmentedSystem {
            sparse: None,
            k,
            m_eq,
        }
    }

    #[test]
    fn dense_cholesky_factor_solves_twice() {
        let mut sys = dense_system(2, 0);
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 4.0;
        m[(1, 1)] = 9.0;
        let a_eq = Matrix::zeros(0, 2);
        let mut tally = FactorTally::default();
        let f = sys.factor(&m, &a_eq, &mut tally).expect("SPD factors");
        // Two solves against one factorization — the factor-once contract.
        let (dx1, dnu1) = f.solve(&[4.0, 9.0], &[]).expect("first solve");
        let (dx2, _) = f.solve(&[8.0, 18.0], &[]).expect("second solve");
        assert!(dnu1.is_empty());
        assert!((dx1[0] - 1.0).abs() < 1e-9 && (dx1[1] - 1.0).abs() < 1e-9);
        assert!((dx2[0] - 2.0).abs() < 1e-9 && (dx2[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dense_kkt_factor_returns_equality_duals() {
        // min-like system: M = I, one equality row [1 1].
        let mut sys = dense_system(2, 1);
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(1, 1)] = 1.0;
        let mut a_eq = Matrix::zeros(1, 2);
        a_eq[(0, 0)] = 1.0;
        a_eq[(0, 1)] = 1.0;
        let mut tally = FactorTally::default();
        let f = sys.factor(&m, &a_eq, &mut tally).expect("KKT factors");
        let (dx, dnu) = f.solve(&[1.0, 1.0], &[0.0]).expect("solve");
        assert_eq!(dnu.len(), 1);
        // Symmetric system: Δx components match, Â Δx = 0.
        assert!((dx[0] + dx[1]).abs() < 1e-8);
    }

    #[test]
    fn non_finite_matrix_is_a_typed_error() {
        let mut sys = dense_system(1, 0);
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = f64::INFINITY;
        let a_eq = Matrix::zeros(0, 1);
        let mut tally = FactorTally::default();
        let err = sys
            .factor(&m, &a_eq, &mut tally)
            .err()
            .expect("non-finite matrix must be rejected");
        assert_eq!(err, SystemError::NonFinite("condensed KKT matrix"));
        assert_eq!(tally.factorizations, 0);
    }

    #[test]
    fn non_finite_rhs_is_a_typed_error() {
        let mut sys = dense_system(1, 0);
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = 1.0;
        let a_eq = Matrix::zeros(0, 1);
        let mut tally = FactorTally::default();
        let f = sys.factor(&m, &a_eq, &mut tally).expect("factors");
        assert_eq!(
            f.solve(&[f64::NAN], &[]),
            Err(SystemError::NonFinite("KKT right-hand side"))
        );
    }
}
