//! Fraction-to-boundary step limits and the barrier-merit backtracking
//! search that replace the legacy loop's fixed damping.
//!
//! The fraction-to-boundary rule caps each step so every positivity
//! quantity (slacks, bound distances, dual iterates) keeps at least a
//! `1 − τ` fraction of its current value — iterates approach but never
//! touch the boundary, which is what keeps the condensed KKT matrix
//! finite. The primal block additionally backtracks against the barrier
//! merit `Φ_μ̂` (objective plus μ̂-weighted log barriers, the same merit
//! the legacy loop descends): the corrected Mehrotra direction carries
//! second-order terms that are not a descent guarantee, and on nonlinear
//! constraints the linearized slack prediction undershoots the true one,
//! so trial points must re-prove both strict feasibility and progress.
//! Dual blocks take their own boundary-capped step without backtracking —
//! the dual equations are linear, so the full step lands the
//! complementarity products on the current target by construction.

use crate::barrier::ARMIJO_C1;

/// Fraction-to-boundary factor τ: steps stop just short of the positivity
/// boundary so slacks and dual iterates never collapse to zero. Matches
/// the legacy loop's boundary damping so step geometry is comparable
/// across schedules.
pub(crate) const FRACTION_TO_BOUNDARY_TAU: f64 = 0.995;
/// Multiplicative shrink applied to the trial scale after each rejected
/// step (an exact binary halving, so trial points are reproducible).
pub(crate) const MERIT_BACKTRACK_FACTOR: f64 = 0.5;
/// Trial budget per direction: 30 halvings shrink the scale below 1e-9,
/// far past where any usable direction would have been accepted.
pub(crate) const MAX_MERIT_BACKTRACKS: usize = 30;

/// Largest α ∈ [0, 1] keeping `value + α·delta ≥ (1 − τ)·value` for every
/// `(value, delta)` pair — the fraction-to-boundary rule over one
/// positivity block. Values are assumed positive; nonnegative deltas
/// impose no limit.
pub(crate) fn max_step(pairs: impl Iterator<Item = (f64, f64)>, tau: f64) -> f64 {
    let mut alpha = 1.0_f64;
    for (value, delta) in pairs {
        if delta < 0.0 {
            alpha = alpha.min(tau * value / (-delta));
        }
    }
    alpha
}

/// Barrier-merit backtracking: tries θ = 1 first, shrinking by
/// [`MERIT_BACKTRACK_FACTOR`] until a trial passes. `trial(θ)` returns the
/// trial merit when the scaled step is admissible (strictly feasible,
/// finite merit) and `None` otherwise; every rejection — inadmissible or
/// insufficient decrease — counts one backtrack. `scale` is the
/// fraction-to-boundary cap the caller folds into the trial step and
/// `slope` the directional derivative `∇Φᵀd` of the merit along the raw
/// direction, so the Armijo test sees the true step `θ·scale·d`. Like the
/// legacy search, any strict decrease is also accepted: equality-corrected
/// KKT steps are not always descent directions for Φ. Returns the
/// accepted θ, or `None` when the budget runs out.
pub(crate) fn backtrack(
    merit0: f64,
    slope: f64,
    scale: f64,
    mut trial: impl FnMut(f64) -> Option<f64>,
    backtracks: &mut u64,
) -> Option<f64> {
    let mut theta = 1.0_f64;
    for _ in 0..MAX_MERIT_BACKTRACKS {
        if let Some(merit) = trial(theta) {
            if merit <= merit0 + ARMIJO_C1 * theta * scale * slope || merit < merit0 {
                return Some(theta);
            }
        }
        *backtracks += 1;
        theta *= MERIT_BACKTRACK_FACTOR;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_step_caps_only_decreasing_pairs() {
        // Increasing pair imposes no limit; the decreasing pair caps the
        // step at tau * value / |delta|.
        let pairs = vec![(1.0, 5.0), (1.0, -2.0)].into_iter();
        let alpha = max_step(pairs, 0.995);
        assert!((alpha - 0.995 / 2.0).abs() < 1e-12);
        assert!((max_step(std::iter::empty(), 0.995) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backtrack_accepts_full_step_on_decrease() {
        let mut rejected = 0;
        let theta = backtrack(1.0, -0.5, 1.0, |t| Some(1.0 - 0.5 * t), &mut rejected);
        assert_eq!(theta, Some(1.0));
        assert_eq!(rejected, 0);
    }

    #[test]
    fn backtrack_accepts_any_decrease_on_bad_slope() {
        // Positive model slope (no descent predicted) but the merit still
        // improves a hair: the any-decrease fallback accepts.
        let mut rejected = 0;
        let theta = backtrack(1.0, 2.0, 1.0, |_| Some(1.0 - 1e-12), &mut rejected);
        assert_eq!(theta, Some(1.0));
        assert_eq!(rejected, 0);
    }

    #[test]
    fn backtrack_counts_rejections_and_halves() {
        // Inadmissible at θ = 1 and θ = 0.5, then a decreasing merit.
        let mut rejected = 0;
        let theta = backtrack(
            1.0,
            -1.0,
            1.0,
            |t| if t > 0.3 { None } else { Some(0.5) },
            &mut rejected,
        );
        assert_eq!(theta, Some(0.25));
        assert_eq!(rejected, 2);
    }

    #[test]
    fn backtrack_gives_up_after_budget() {
        let mut rejected = 0;
        let theta = backtrack(1.0, -1.0, 1.0, |_| None, &mut rejected);
        assert_eq!(theta, None);
        assert_eq!(rejected as usize, MAX_MERIT_BACKTRACKS);
    }
}
