//! Structured NLP problem representation.

use crate::term::ScalarFn;

/// A constraint `g(x) <= 0` of the structured form
/// `Σ linear_j·x_j + Σ φ_v(x_v) + constant <= 0`.
#[derive(Debug, Clone, Default)]
pub struct ConstraintFn {
    /// Sparse linear part: `(variable index, coefficient)`.
    pub linear: Vec<(usize, f64)>,
    /// Univariate nonlinear parts: `(variable index, φ)`.
    pub nonlinear: Vec<(usize, ScalarFn)>,
    /// Additive constant.
    pub constant: f64,
    /// Optional label for diagnostics.
    pub name: String,
}

impl ConstraintFn {
    /// Empty constraint (`0 <= 0`).
    pub fn new(name: impl Into<String>) -> Self {
        ConstraintFn {
            name: name.into(),
            ..ConstraintFn::default()
        }
    }

    /// Adds a linear term.
    pub fn linear_term(mut self, var: usize, coeff: f64) -> Self {
        self.linear.push((var, coeff));
        self
    }

    /// Adds a univariate nonlinear term.
    pub fn nonlinear_term(mut self, var: usize, f: ScalarFn) -> Self {
        if !f.is_zero() {
            self.nonlinear.push((var, f));
        }
        self
    }

    /// Sets the additive constant.
    pub fn with_constant(mut self, c: f64) -> Self {
        self.constant = c;
        self
    }

    /// Evaluates `g(x)`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let lin: f64 = self.linear.iter().map(|&(v, c)| c * x[v]).sum();
        let nln: f64 = self.nonlinear.iter().map(|(v, f)| f.eval(x[*v])).sum();
        lin + nln + self.constant
    }

    /// Accumulates `∇g(x)` into a dense gradient vector.
    pub fn add_gradient(&self, x: &[f64], grad: &mut [f64], scale: f64) {
        for &(v, c) in &self.linear {
            grad[v] += scale * c;
        }
        for (v, f) in &self.nonlinear {
            grad[*v] += scale * f.d1(x[*v]);
        }
    }

    /// Dense gradient (convenience).
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; x.len()];
        self.add_gradient(x, &mut g, 1.0);
        g
    }

    /// Diagonal of `∇²g(x)` accumulated into `diag` with a scale factor.
    /// (The Hessian of a structured constraint is diagonal because every
    /// nonlinear term is univariate.)
    pub fn add_hessian_diag(&self, x: &[f64], diag: &mut [f64], scale: f64) {
        for (v, f) in &self.nonlinear {
            diag[*v] += scale * f.d2(x[*v]);
        }
    }

    /// Whether this constraint is convex (all terms convex).
    pub fn is_convex(&self) -> bool {
        self.nonlinear.iter().all(|(_, f)| f.is_convex())
    }

    /// Whether the constraint has no nonlinear part.
    pub fn is_linear(&self) -> bool {
        self.nonlinear.is_empty()
    }

    /// The outer-approximation linearization of this constraint around `x0`:
    /// returns `(coefficients, rhs)` such that `coeffs·x <= rhs` is valid
    /// for every `x` with `g(x) <= 0` **when the constraint is convex**
    /// (first-order underestimation: `g(x) >= g(x0) + ∇g(x0)ᵀ(x - x0)`).
    pub fn linearize(&self, x0: &[f64]) -> (Vec<(usize, f64)>, f64) {
        let g0 = self.eval(x0);
        let grad = self.gradient(x0);
        let mut coeffs = Vec::new();
        let mut grad_dot_x0 = 0.0;
        for (v, gv) in grad.iter().enumerate() {
            if !hslb_linalg::approx::exactly_zero(*gv) {
                coeffs.push((v, *gv));
                grad_dot_x0 += gv * x0[v];
            }
        }
        // g(x0) + ∇gᵀ(x - x0) <= 0  ⇔  ∇gᵀ x <= ∇gᵀ x0 - g(x0)
        (coeffs, grad_dot_x0 - g0)
    }
}

/// A linear equality `Σ coeffs·x = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearEq {
    pub coeffs: Vec<(usize, f64)>,
    pub rhs: f64,
}

impl LinearEq {
    /// Residual `Σ coeffs·x - rhs` (zero when satisfied).
    pub fn residual(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(v, c)| c * x[v]).sum::<f64>() - self.rhs
    }
}

/// A structured NLP:
/// `min cᵀx  s.t.  g_i(x) <= 0,  A x = b,  lo <= x <= hi`.
#[derive(Debug, Clone, Default)]
pub struct NlpProblem {
    costs: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    constraints: Vec<ConstraintFn>,
    equalities: Vec<LinearEq>,
}

impl NlpProblem {
    /// Empty problem.
    pub fn new() -> Self {
        NlpProblem::default()
    }

    /// Adds a variable; returns its index.
    ///
    /// # Panics
    /// Panics on crossed or NaN bounds.
    pub fn add_var(&mut self, cost: f64, lo: f64, hi: f64) -> usize {
        assert!(!lo.is_nan() && !hi.is_nan(), "bounds must not be NaN");
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        self.costs.push(cost);
        self.lo.push(lo);
        self.hi.push(hi);
        self.costs.len() - 1
    }

    /// Adds a constraint `g(x) <= 0`.
    ///
    /// # Panics
    /// Panics if the constraint references a variable that does not exist.
    pub fn add_constraint(&mut self, c: ConstraintFn) -> usize {
        let n = self.costs.len();
        for &(v, _) in &c.linear {
            assert!(v < n, "constraint references unknown variable {v}");
        }
        for (v, _) in &c.nonlinear {
            assert!(*v < n, "constraint references unknown variable {v}");
        }
        self.constraints.push(c);
        self.constraints.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Adds a linear equality `Σ coeffs·x = rhs`.
    ///
    /// # Panics
    /// Panics on references to unknown variables.
    pub fn add_linear_eq(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) -> usize {
        let n = self.costs.len();
        for &(v, _) in &coeffs {
            assert!(v < n, "equality references unknown variable {v}");
        }
        self.equalities.push(LinearEq { coeffs, rhs });
        self.equalities.len() - 1
    }

    /// Linear equalities.
    pub fn equalities(&self) -> &[LinearEq] {
        &self.equalities
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Lower bounds.
    pub fn lowers(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn uppers(&self) -> &[f64] {
        &self.hi
    }

    /// Mutable bound setters used by branch-and-bound to fix/split vars.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        assert!(var < self.num_vars());
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        self.lo[var] = lo;
        self.hi[var] = hi;
    }

    /// Constraints.
    pub fn constraints(&self) -> &[ConstraintFn] {
        &self.constraints
    }

    /// Objective value at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.costs.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Max constraint violation (0 when feasible), ignoring bounds. Counts
    /// both inequality excess and equality residuals.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ineq = self
            .constraints
            .iter()
            .map(|c| c.eval(x).max(0.0))
            .fold(0.0, f64::max);
        let eq = self
            .equalities
            .iter()
            .map(|e| e.residual(x).abs())
            .fold(0.0, f64::max);
        ineq.max(eq)
    }

    /// Whether `x` satisfies bounds and all constraints within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for ((&xi, &lo), &hi) in x.iter().zip(&self.lo).zip(&self.hi) {
            if xi < lo - tol || xi > hi + tol {
                return false;
            }
        }
        self.max_violation(x) <= tol
    }

    /// Whether the problem is convex (every constraint convex; objective is
    /// linear, hence convex).
    pub fn is_convex(&self) -> bool {
        self.constraints.iter().all(ConstraintFn::is_convex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{ScalarFn, Term};

    fn sample_constraint() -> ConstraintFn {
        // g(x, T) = 100/x + 2x - T + 5 <= 0
        ConstraintFn::new("g")
            .nonlinear_term(0, ScalarFn::perf_model(100.0, 2.0, 1.0))
            .linear_term(1, -1.0)
            .with_constant(5.0)
    }

    #[test]
    fn eval_and_gradient() {
        let g = sample_constraint();
        let x = [10.0, 40.0];
        // 100/10 + 20 - 40 + 5 = -5
        assert!((g.eval(&x) + 5.0).abs() < 1e-12);
        let grad = g.gradient(&x);
        // d/dx = -100/x² + 2 = 1; d/dT = -1
        assert!((grad[0] - 1.0).abs() < 1e-12);
        assert!((grad[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hessian_diag() {
        let g = sample_constraint();
        let mut diag = vec![0.0; 2];
        g.add_hessian_diag(&[10.0, 40.0], &mut diag, 1.0);
        // d²/dx² = 200/x³ = 0.2
        assert!((diag[0] - 0.2).abs() < 1e-12);
        assert_eq!(diag[1], 0.0);
    }

    #[test]
    fn linearization_is_valid_underestimate() {
        let g = sample_constraint();
        let x0 = [10.0, 40.0];
        let (coeffs, rhs) = g.linearize(&x0);
        // For a convex g, any x with g(x) <= 0 must satisfy the cut.
        for &(xv, tv) in &[(5.0, 50.0), (20.0, 60.0), (8.0, 35.0)] {
            let x = [xv, tv];
            if g.eval(&x) <= 0.0 {
                let lhs: f64 = coeffs.iter().map(|&(v, c)| c * x[v]).sum();
                assert!(lhs <= rhs + 1e-9, "cut wrongly excludes feasible {x:?}");
            }
        }
        // And the cut must be tight at the linearization point:
        let lhs0: f64 = coeffs.iter().map(|&(v, c)| c * x0[v]).sum();
        assert!((lhs0 - (rhs + g.eval(&x0))).abs() < 1e-9);
    }

    #[test]
    fn problem_feasibility() {
        let mut p = NlpProblem::new();
        let x = p.add_var(0.0, 1.0, 100.0);
        let t = p.add_var(1.0, 0.0, 1e6);
        assert_eq!((x, t), (0, 1));
        p.add_constraint(sample_constraint());
        assert!(p.is_feasible(&[10.0, 40.0], 1e-9));
        assert!(!p.is_feasible(&[10.0, 20.0], 1e-9)); // violates g
        assert!(!p.is_feasible(&[0.5, 40.0], 1e-9)); // violates bound
        assert!(p.is_convex());
    }

    #[test]
    fn nonconvex_detected() {
        let mut p = NlpProblem::new();
        p.add_var(0.0, 1.0, 10.0);
        let mut f = ScalarFn::new();
        f.push(Term::PowerGrowth { b: 1.0, c: 0.5 }); // concave
        p.add_constraint(ConstraintFn::new("bad").nonlinear_term(0, f));
        assert!(!p.is_convex());
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn dangling_constraint_panics() {
        let mut p = NlpProblem::new();
        p.add_constraint(ConstraintFn::new("g").linear_term(2, 1.0));
    }
}
