//! Log-barrier interior-point solver for structured convex NLPs.
//!
//! Minimizes `cᵀx` subject to `g_i(x) <= 0`, linear equalities `A x = b`,
//! and box bounds by solving a sequence of barrier subproblems
//!
//! ```text
//! min  cᵀx - μ Σ log(-g_i(x)) - μ Σ log(x_j - lo_j) - μ Σ log(hi_j - x_j)
//! s.t. A x = b
//! ```
//!
//! with damped equality-constrained Newton steps (KKT system), shrinking `μ`
//! geometrically. Fixed variables (`lo == hi`, produced when branch-and-bound
//! pins an integer) are eliminated from the Newton system, and constraints
//! that touch no free variable become plain feasibility checks — they may sit
//! exactly on their boundary (e.g. a saturated capacity row), which the
//! strict barrier interior would otherwise reject.

use crate::problem::NlpProblem;
use hslb_linalg::approx::exactly_zero;
use hslb_linalg::{
    CholSymbolic, Cholesky, CscMatrix, LinalgBackend, Lu, LuSymbolic, Matrix, Qr, SparseCholesky,
    SparseLu, SparseWorkspace,
};
use hslb_obs::{Event, Trace};

/// Default duality-gap stopping tolerance (`BarrierOptions::gap_tol`).
const DEFAULT_GAP_TOL: f64 = 1e-9;
/// Default inner Newton step-norm tolerance (`BarrierOptions::newton_tol`).
const DEFAULT_NEWTON_TOL: f64 = 1e-10;
/// Default strict-feasibility margin demanded of starting points.
const DEFAULT_INTERIOR_MARGIN: f64 = 1e-8;
/// Relative feasibility tolerance for constraints whose variables are all
/// pinned: they are checked once against this, not barrier-enforced.
const PINNED_FEAS_TOL: f64 = 1e-7;
/// Relative equality-residual tolerance for an acceptable start point.
const EQ_RESIDUAL_TOL: f64 = 1e-9;
/// Looser residual bound accepted when projection rounds run out — the
/// Newton iterations keep correcting equality drift of this size.
const EQ_RESIDUAL_LOOSE_TOL: f64 = 1e-5;
/// Fraction of the box width used to pull start points strictly inside.
const START_MARGIN_FRAC: f64 = 1e-4;
/// Floor on the width scale used for that margin (degenerate boxes).
const MIN_MARGIN_SCALE: f64 = 1e-6;
/// Cholesky regularization when projecting onto the equality manifold.
const PROJ_CHOL_REG: f64 = 1e-12;
/// Cholesky regularization for the unconstrained Newton Hessian.
pub(crate) const HESS_CHOL_REG: f64 = 1e-10;
/// Primal/dual regularization added to the KKT system diagonal.
pub(crate) const KKT_REG: f64 = 1e-12;
/// Relative threshold below which a fitted inequality dual counts as
/// "clearly negative" (wrong active-set guess) rather than noise.
const DUAL_NEG_TOL: f64 = 1e-6;
/// Fraction-to-boundary factor: line searches stop just short of the
/// inequality boundary so slacks never collapse to zero.
const FRACTION_TO_BOUNDARY: f64 = 0.995;
/// Armijo sufficient-decrease coefficient for the backtracking search.
pub(crate) const ARMIJO_C1: f64 = 1e-4;
/// Phase-1 interior-depth fraction: exit only once slacks are at least
/// this fraction of the initial violation scale (a hair past the boundary
/// gives a ~1/slack²-conditioned Hessian and a dead start).
const PHASE1_DEPTH_FRAC: f64 = 1e-3;
/// Relative headroom added to the phase-1 start slack. An absolute `+1.0`
/// vanishes below the violation's ulp once `viol` passes ~2^53 (hostile
/// wire coefficients reach ~1e17), which would start phase 1 exactly on
/// the relaxed boundary instead of strictly inside it.
const PHASE1_HEADROOM_REL: f64 = 1e-9;
/// Relative magnitude above which a raw dual counts as active in the
/// multiplier refinement least-squares fit.
const ACTIVE_DUAL_REL: f64 = 1e-4;
/// Relative distance-to-bound margin used to classify a coordinate as
/// interior during multiplier refinement.
const INTERIOR_REL_MARGIN: f64 = 1e-3;
/// Blend weights toward the cold midpoint start tried when repairing a
/// warm-start point; the first strictly feasible candidate wins. θ = 0 is
/// the parent point itself (box-clamped); by convexity each θ shrinks every
/// constraint violation toward the midpoint's slack, so a small blend is
/// usually enough to peel a parent-active constraint off its boundary.
const WARM_BLEND_STEPS: [f64; 6] = [0.0, 0.01, 0.05, 0.1, 0.25, 0.5];
/// Rounds of first-order interior restoration tried on a clamped warm point
/// when every midpoint blend fails (see `push_interior`). Each round costs
/// one evaluation + linearization per constraint.
const WARM_PUSH_ROUNDS: usize = 16;
/// Absolute slack the interior push aims for on each near-active
/// constraint. Deep enough that the barrier Hessian (∝ 1/slack²) stays
/// numerically sane at the warm μ, shallow enough that the start stays
/// essentially on the parent optimum — and that the complementarity
/// estimate `λ·slack` feeding [`warm_mu0`] lands the barrier only a few
/// outer rounds from its stopping μ.
const WARM_PUSH_SLACK: f64 = 1e-4;
/// Barrier weight for warm starts when the parent multipliers give no
/// usable complementarity estimate. Far below the cold `mu0` (the point is
/// already near the child optimum) but high enough that the first rounds
/// still recenter the iterate.
const WARM_MU0_DEFAULT: f64 = 1e-2;
/// Floor on the warm-start barrier weight; `μ·slack` complementarity
/// estimates from an already-converged parent go to zero and would
/// otherwise skip recentering entirely.
const WARM_MU0_MIN: f64 = 1e-6;
/// Centering factor σ applied to the parent complementarity estimate
/// (Mehrotra-style): aim the first warm barrier round a step *down* the
/// central path rather than at the parent's own μ — the repaired point is
/// already centered there, so re-solving at that μ wastes a round.
const WARM_MU0_SIGMA: f64 = 0.1;

/// Barrier solver options.
#[derive(Debug, Clone)]
pub struct BarrierOptions {
    /// Initial barrier weight.
    pub mu0: f64,
    /// Multiplicative decrease per outer iteration.
    pub mu_shrink: f64,
    /// Stop when `mu * (#constraints + #finite bounds)` drops below this.
    pub gap_tol: f64,
    /// Inner Newton tolerance on the step norm.
    pub newton_tol: f64,
    /// Maximum Newton iterations per barrier subproblem.
    pub max_newton: usize,
    /// Maximum outer (barrier) iterations.
    pub max_outer: usize,
    /// Strict-feasibility margin required of starting points.
    pub interior_margin: f64,
    /// Event trace (off by default; see `hslb-obs`). When enabled, every
    /// completed solve emits one `NlpSolved` event carrying its Newton
    /// iteration count.
    pub trace: Trace,
    /// Which linear-algebra kernels the Newton/KKT solves use. `Auto`
    /// keeps paper-scale systems on the dense oracle and switches large
    /// ones to the sparse factorizations with symbolic reuse.
    pub backend: LinalgBackend,
    /// Multiplier applied to the initial barrier weight, cold and warm
    /// alike (must be positive). A per-problem-family heuristic hook: a
    /// family whose instances start far from the central path can raise
    /// it, one whose warm seeds are reliably near-optimal can lower it,
    /// without touching the shared `mu0` default. `1.0` is neutral.
    pub mu0_scale: f64,
    /// Run the pre-Mehrotra fixed-μ schedule (geometric shrink, damped
    /// Newton, Armijo search) instead of the predictor-corrector loop in
    /// [`crate::mpc`]. Kept for one release as a differential baseline —
    /// the equivalence batteries diff its answers against the MPC path.
    pub legacy_schedule: bool,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            mu0: 10.0,
            mu_shrink: 0.2,
            gap_tol: DEFAULT_GAP_TOL,
            newton_tol: DEFAULT_NEWTON_TOL,
            // Generous inner budget: epigraph formulations start far from
            // the central path (t at the midpoint of a huge box), and the
            // first barrier rounds need well over 60 Newton steps to walk
            // it in. Stalling there is *more* expensive than converging —
            // the solve limps through every later round — and can terminate
            // at a badly suboptimal point that still reports Optimal.
            max_newton: 200,
            max_outer: 60,
            interior_margin: DEFAULT_INTERIOR_MARGIN,
            trace: Trace::off(),
            backend: LinalgBackend::Auto,
            mu0_scale: 1.0,
            legacy_schedule: false,
        }
    }
}

/// Terminal status of an NLP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlpStatus {
    /// Converged to the required gap.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Iterates diverged — the problem appears unbounded below.
    Unbounded,
    /// Budgets exhausted before convergence.
    IterationLimit,
}

/// Errors that indicate misuse rather than mathematical outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum NlpError {
    /// Some variable has an empty domain (`lo > hi`).
    EmptyDomain { var: usize },
}

impl std::fmt::Display for NlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NlpError::EmptyDomain { var } => write!(f, "variable {var} has an empty domain"),
        }
    }
}

impl std::error::Error for NlpError {}

/// Solution bundle.
#[derive(Debug, Clone)]
pub struct NlpSolution {
    pub status: NlpStatus,
    /// Primal point (meaningful for `Optimal`; best effort otherwise).
    pub x: Vec<f64>,
    /// Objective `cᵀx` at `x`.
    pub objective: f64,
    /// Inequality multipliers, one per constraint: barrier estimates
    /// `μ / (-g_i(x))` refined by a least-squares stationarity fit (see
    /// `refine_multipliers`), so active constraints carry KKT-accurate duals.
    pub multipliers: Vec<f64>,
    /// Total Newton iterations.
    pub newton_iters: usize,
    /// Whether a [`WarmStart`] seed was actually used (repair succeeded);
    /// `false` on cold solves and on warm calls that fell back cold.
    pub warm_started: bool,
    /// Sparse numeric KKT/Hessian factorizations performed (zero on the
    /// dense path, which solves in place).
    pub factorizations: u64,
    /// Cumulative nonzeros across all sparse factors (zero on the dense
    /// path).
    pub fill_nnz: u64,
    /// Affine-scaling predictor solves (zero on the legacy schedule).
    pub predictor_steps: u64,
    /// Corrector solves, including pure-centering rescues (zero on the
    /// legacy schedule).
    pub corrector_steps: u64,
    /// Merit-search trial steps rejected before acceptance (zero on the
    /// legacy schedule, whose Armijo halvings are not counted here).
    pub line_search_backtracks: u64,
}

impl NlpSolution {
    fn failed(status: NlpStatus, newton_iters: usize) -> Self {
        NlpSolution {
            status,
            x: Vec::new(),
            objective: match status {
                NlpStatus::Infeasible => f64::INFINITY,
                NlpStatus::Unbounded => f64::NEG_INFINITY,
                _ => f64::NAN,
            },
            multipliers: Vec::new(),
            newton_iters,
            warm_started: false,
            factorizations: 0,
            fill_nnz: 0,
            predictor_steps: 0,
            corrector_steps: 0,
            line_search_backtracks: 0,
        }
    }
}

/// Warm-start seed for [`solve_warm_with`]: the optimum of a *nearby*
/// problem — in branch-and-bound, the parent node, which differs only by
/// one tightened bound.
///
/// The seed is advisory: the point is box-clamped, blended toward the cold
/// start until strictly feasible, and projected back onto the equality
/// manifold; when no blend candidate is strictly feasible the solve falls
/// back to the cold path. Infeasibility verdicts are therefore only ever
/// produced by the cold machinery, so warm and cold solves agree on status.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Primal point in the full variable space.
    pub x: Vec<f64>,
    /// Inequality multipliers, one per constraint (may be empty when the
    /// seed comes from a point without duals, e.g. an LP vertex).
    pub multipliers: Vec<f64>,
}

impl WarmStart {
    pub fn new(x: Vec<f64>, multipliers: Vec<f64>) -> Self {
        WarmStart { x, multipliers }
    }

    /// Seed from a primal point only (no dual information).
    pub fn from_point(x: Vec<f64>) -> Self {
        WarmStart {
            x,
            multipliers: Vec::new(),
        }
    }
}

/// Divergence guard: iterates beyond this are treated as unbounded.
pub(crate) const DIVERGENCE_LIMIT: f64 = 1e13;

/// Solves the problem with default options.
pub fn solve(p: &NlpProblem) -> Result<NlpSolution, NlpError> {
    solve_with(p, &BarrierOptions::default())
}

/// Solves the problem with explicit options.
pub fn solve_with(p: &NlpProblem, opts: &BarrierOptions) -> Result<NlpSolution, NlpError> {
    solve_warm_with(p, opts, None)
}

/// Solves the problem, optionally seeded from a parent solve's [`WarmStart`].
pub fn solve_warm_with(
    p: &NlpProblem,
    opts: &BarrierOptions,
    warm: Option<&WarmStart>,
) -> Result<NlpSolution, NlpError> {
    let mut scratch = SparseWorkspace::new();
    solve_warm_with_workspace(p, opts, warm, &mut scratch)
}

/// Like [`solve_warm_with`] but reusing a caller-held [`SparseWorkspace`]
/// for the sparse factorizations — hot loops (branch-and-bound scratch
/// arenas) keep one per worker so repeated solves never reallocate the
/// scatter/mark buffers. A no-op cost on the dense path.
pub fn solve_warm_with_workspace(
    p: &NlpProblem,
    opts: &BarrierOptions,
    warm: Option<&WarmStart>,
    scratch: &mut SparseWorkspace,
) -> Result<NlpSolution, NlpError> {
    let result = solve_inner(p, opts, warm, scratch);
    if let Ok(sol) = &result {
        opts.trace.emit(|| Event::NlpSolved {
            newton_iters: sol.newton_iters as u64,
        });
    }
    result
}

/// The actual barrier solve; `solve_warm_with` wraps it so that every
/// completed solve (including infeasibility verdicts) emits exactly one
/// trace event.
fn solve_inner(
    p: &NlpProblem,
    opts: &BarrierOptions,
    warm: Option<&WarmStart>,
    scratch: &mut SparseWorkspace,
) -> Result<NlpSolution, NlpError> {
    let n = p.num_vars();
    for j in 0..n {
        if p.lowers()[j] > p.uppers()[j] {
            return Err(NlpError::EmptyDomain { var: j });
        }
    }

    let is_free: Vec<bool> = (0..n).map(|j| p.lowers()[j] < p.uppers()[j]).collect();
    let x_pinned = default_start(p);

    // Reduced problem: constraints/equalities that touch no free variable
    // are checked once and dropped.
    let mut reduced = NlpProblem::new();
    for j in 0..n {
        reduced.add_var(p.costs()[j], p.lowers()[j], p.uppers()[j]);
    }
    let mut active_map = Vec::new(); // original index of kept inequalities
    for (ci, c) in p.constraints().iter().enumerate() {
        let touches_free = c
            .linear
            .iter()
            .any(|&(v, co)| is_free[v] && !exactly_zero(co))
            || c.nonlinear.iter().any(|(v, f)| is_free[*v] && !f.is_zero());
        if touches_free {
            reduced.add_constraint(c.clone());
            active_map.push(ci);
        } else {
            let g = c.eval(&x_pinned);
            let scale = 1.0
                + c.linear
                    .iter()
                    .map(|&(v, co)| (co * x_pinned[v]).abs())
                    .sum::<f64>()
                + c.constant.abs();
            if g > PINNED_FEAS_TOL * scale {
                return Ok(NlpSolution::failed(NlpStatus::Infeasible, 0));
            }
        }
    }
    for e in p.equalities() {
        let touches_free = e
            .coeffs
            .iter()
            .any(|&(v, co)| is_free[v] && !exactly_zero(co));
        if touches_free {
            reduced.add_linear_eq(e.coeffs.clone(), e.rhs);
        } else {
            let scale = 1.0
                + e.coeffs
                    .iter()
                    .map(|&(v, co)| (co * x_pinned[v]).abs())
                    .sum::<f64>()
                + e.rhs.abs();
            if e.residual(&x_pinned).abs() > PINNED_FEAS_TOL * scale {
                return Ok(NlpSolution::failed(NlpStatus::Infeasible, 0));
            }
        }
    }

    let mut newton_total = 0usize;
    let mut tally = FactorTally::default();

    // Warm path: repair the parent point into a strictly feasible start.
    // Only a *proven* strictly feasible repair is used, so the warm path can
    // never produce an infeasibility verdict the cold path wouldn't.
    let mut warm_seed: Option<(Vec<f64>, f64)> = None;
    if let Some(ws) = warm {
        if ws.x.len() == n {
            let has_duals = !ws.multipliers.is_empty();
            if let Some(xw) = repair_warm_point(&reduced, &ws.x, has_duals, opts) {
                let mu0 = warm_mu0(p, &xw, &ws.multipliers, opts);
                warm_seed = Some((xw, mu0));
            }
        }
    }
    let warm_started = warm_seed.is_some();

    let (x0, mu0) = match warm_seed {
        Some(seed) => seed,
        None => {
            // Cold path: a point on the equality manifold, strictly inside
            // bounds, then phase 1 when inequalities are not strictly
            // satisfied there.
            let Some(mut x0) = equality_start(&reduced, opts) else {
                return Ok(NlpSolution::failed(NlpStatus::Infeasible, newton_total));
            };
            if !strictly_feasible(&reduced, &x0, opts.interior_margin) {
                match phase_one(&reduced, &x0, opts, &mut newton_total, &mut tally, scratch) {
                    Ok(Some(feasible)) => x0 = feasible,
                    Ok(None) => {
                        return Ok(NlpSolution::failed(NlpStatus::Infeasible, newton_total))
                    }
                    Err(status) => return Ok(NlpSolution::failed(status, newton_total)),
                }
            }
            (x0, opts.mu0 * opts.mu0_scale)
        }
    };

    let mut out = barrier_loop(
        &reduced,
        x0,
        mu0,
        opts,
        &mut newton_total,
        &mut tally,
        scratch,
        None,
    );
    out.warm_started = warm_started;
    out.factorizations = tally.factorizations;
    out.fill_nnz = tally.fill_nnz;
    out.predictor_steps = tally.predictor_steps;
    out.corrector_steps = tally.corrector_steps;
    out.line_search_backtracks = tally.line_search_backtracks;
    // Re-inflate multipliers to the original constraint indexing.
    if out.multipliers.len() == active_map.len() && p.num_constraints() != out.multipliers.len() {
        let mut full = vec![0.0; p.num_constraints()];
        for (k, &ci) in active_map.iter().enumerate() {
            full[ci] = out.multipliers[k];
        }
        out.multipliers = full;
    }
    Ok(out)
}

/// Default interior-ish starting point.
fn default_start(p: &NlpProblem) -> Vec<f64> {
    (0..p.num_vars())
        .map(|j| {
            let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    if lo == hi {
                        lo
                    } else {
                        0.5 * (lo + hi)
                    }
                }
                (true, false) => lo + 1.0,
                (false, true) => hi - 1.0,
                (false, false) => 0.0,
            }
        })
        .collect()
}

/// Free-variable indices.
fn free_vars(p: &NlpProblem) -> Vec<usize> {
    (0..p.num_vars())
        .filter(|&j| p.lowers()[j] < p.uppers()[j])
        .collect()
}

/// Repairs a parent-node optimum into a strictly feasible start for this
/// node: box-clamp (pinned coordinates snap to their pin), then try blend
/// candidates toward the cold midpoint start, re-projecting each onto the
/// equality manifold. Returns `None` when no candidate is strictly feasible
/// — the caller then runs the cold path.
///
/// `has_duals` says whether the seed carries parent multipliers. Only then
/// is the aggressive [`push_interior`] restoration tried: it lands the
/// point right at the target slack of previously-violated rows, and
/// starting there is productive only when `warm_mu0` can match μ to that
/// proximity via the parent's complementarity. Dual-less seeds (candidate
/// polish) get the blend repair alone — an active-set-hugging start paired
/// with the fallback μ reliably stalls the inner Newton at its cap.
fn repair_warm_point(
    p: &NlpProblem,
    parent: &[f64],
    has_duals: bool,
    opts: &BarrierOptions,
) -> Option<Vec<f64>> {
    let mut xw = parent.to_vec();
    clamp_into_box(p, &mut xw);
    let mid = default_start(p);
    for &theta in &WARM_BLEND_STEPS {
        let cand: Vec<f64> = xw
            .iter()
            .zip(&mid)
            .map(|(&a, &b)| (1.0 - theta) * a + theta * b)
            .collect();
        let cand = if p.equalities().is_empty() {
            cand
        } else {
            match equality_project(p, cand) {
                Some(projected) => projected,
                None => continue,
            }
        };
        if strictly_feasible(p, &cand, opts.interior_margin) {
            return Some(cand);
        }
    }
    // Every blend failed. The typical cause: a capacity-style row is active
    // at the parent optimum *and* violated at the box midpoint, so the whole
    // blend segment sits outside the feasible set. Project the slack back
    // directly instead of interpolating toward an infeasible anchor.
    if has_duals {
        push_interior(p, xw, opts)
    } else {
        None
    }
}

/// Pulls free coordinates strictly inside their box by the start margin;
/// pinned coordinates snap to their pin.
fn clamp_into_box(p: &NlpProblem, x: &mut [f64]) {
    for ((xj, &lo), &hi) in x.iter_mut().zip(p.lowers()).zip(p.uppers()) {
        if lo == hi {
            *xj = lo;
            continue;
        }
        let width = if lo.is_finite() && hi.is_finite() {
            hi - lo
        } else {
            1.0
        };
        let margin = START_MARGIN_FRAC * width.max(MIN_MARGIN_SCALE);
        if lo.is_finite() && *xj < lo + margin {
            *xj = lo + margin;
        }
        if hi.is_finite() && *xj > hi - margin {
            *xj = hi - margin;
        }
    }
}

/// First-order interior restoration for a warm point whose blends all
/// failed: cyclically push each near-active inequality to an absolute depth
/// of [`WARM_PUSH_SLACK`] by stepping along its negative gradient over the
/// free coordinates (Gauss–Seidel — each step sees the previous ones), then
/// re-clamp into the box and re-project onto the equality manifold. The
/// constraints are convex, so each linearized step can undershoot; the round
/// loop absorbs the curvature. Returns `None` (cold fallback) when a
/// violated constraint has no free support or a round cannot move.
fn push_interior(p: &NlpProblem, mut x: Vec<f64>, opts: &BarrierOptions) -> Option<Vec<f64>> {
    // Aim deeper than the strict-feasibility margin so the accepted point
    // survives the clamp/projection that follows each round.
    let target = WARM_PUSH_SLACK.max(4.0 * opts.interior_margin);
    for _round in 0..WARM_PUSH_ROUNDS {
        if strictly_feasible(p, &x, opts.interior_margin) {
            return Some(x);
        }
        let mut moved = false;
        for c in p.constraints() {
            let g = c.eval(&x);
            if g <= -target {
                continue;
            }
            let (coeffs, _) = c.linearize(&x);
            let norm2: f64 = coeffs
                .iter()
                .filter(|&&(v, _)| p.lowers()[v] < p.uppers()[v])
                .map(|&(_, co)| co * co)
                .sum();
            if norm2 <= 0.0 {
                // Violated (or too shallow) with no free support: only the
                // cold path can decide feasibility here.
                return None;
            }
            let step = (g + target) / norm2;
            for &(v, co) in &coeffs {
                if p.lowers()[v] < p.uppers()[v] {
                    x[v] -= step * co;
                }
            }
            moved = true;
        }
        if !moved {
            return None;
        }
        clamp_into_box(p, &mut x);
        if !p.equalities().is_empty() {
            x = equality_project(p, x)?;
        }
    }
    strictly_feasible(p, &x, opts.interior_margin).then_some(x)
}

/// Initial barrier weight for a warm-started solve: the parent's
/// complementarity scale `max_i λ_i·(-g_i(x))`, clamped to a sane range.
fn warm_mu0(p: &NlpProblem, x: &[f64], multipliers: &[f64], opts: &BarrierOptions) -> f64 {
    let mut est = 0.0_f64;
    if multipliers.len() == p.num_constraints() {
        for (c, &lam) in p.constraints().iter().zip(multipliers) {
            let slack = -c.eval(x);
            if slack > 0.0 && lam > 0.0 {
                est = est.max(lam * slack);
            }
        }
    }
    let base = if est > 0.0 {
        (WARM_MU0_SIGMA * est).clamp(WARM_MU0_MIN, opts.mu0)
    } else {
        WARM_MU0_DEFAULT.min(opts.mu0)
    };
    // The per-family scale applies to warm starts too (a family whose warm
    // seeds need extra recentering raises it), floored so the first rounds
    // still move.
    (base * opts.mu0_scale).max(WARM_MU0_MIN)
}

/// Finds a point on the equality manifold strictly inside the bound box,
/// starting from the cold midpoint.
fn equality_start(p: &NlpProblem, _opts: &BarrierOptions) -> Option<Vec<f64>> {
    equality_project(p, default_start(p))
}

/// Projects `x` onto the equality manifold strictly inside the bound box by
/// alternating projection (project onto `A x = b` over the free variables,
/// then pull strictly inside the box). Returns `None` when the equalities
/// appear inconsistent with the box.
fn equality_project(p: &NlpProblem, mut x: Vec<f64>) -> Option<Vec<f64>> {
    let free = free_vars(p);
    if p.equalities().is_empty() || free.is_empty() {
        return Some(x);
    }
    let m = p.equalities().len();
    let k = free.len();
    let col_of: std::collections::HashMap<usize, usize> =
        free.iter().enumerate().map(|(c, &j)| (j, c)).collect();
    // Â over free vars.
    let mut a = Matrix::zeros(m, k);
    for (r, e) in p.equalities().iter().enumerate() {
        for &(v, co) in &e.coeffs {
            if let Some(&c) = col_of.get(&v) {
                a[(r, c)] += co;
            }
        }
    }
    let aat = {
        let at = a.transpose();
        a.matmul(&at).expect("m x k times k x m")
    };
    let scale: f64 = p
        .equalities()
        .iter()
        .map(|e| e.rhs.abs() + e.coeffs.iter().map(|&(_, c)| c.abs()).sum::<f64>())
        .fold(1.0, f64::max);

    for _round in 0..100 {
        // Residual r = b - A x (full x, so pinned contributions count).
        let r: Vec<f64> = p.equalities().iter().map(|e| -e.residual(&x)).collect();
        let rnorm = r.iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
        let inside = free.iter().all(|&j| {
            let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
            (!lo.is_finite() || x[j] > lo) && (!hi.is_finite() || x[j] < hi)
        });
        if rnorm <= EQ_RESIDUAL_TOL * scale && inside {
            return Some(x);
        }
        // Least-norm correction: Δ = Âᵀ (ÂÂᵀ)⁻¹ r.
        let lam = match Cholesky::new_regularized(&aat, PROJ_CHOL_REG) {
            Ok((ch, _)) => ch.solve(&r),
            Err(_) => return None,
        };
        let delta = a.matvec_transposed(&lam);
        for (c, &j) in free.iter().enumerate() {
            x[j] += delta[c];
        }
        // Pull strictly inside the box (fractional margin).
        for &j in &free {
            let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
            let width = if lo.is_finite() && hi.is_finite() {
                hi - lo
            } else {
                1.0
            };
            let margin = START_MARGIN_FRAC * width.max(MIN_MARGIN_SCALE);
            if lo.is_finite() && x[j] < lo + margin {
                x[j] = lo + margin;
            }
            if hi.is_finite() && x[j] > hi - margin {
                x[j] = hi - margin;
            }
        }
    }
    // Accept a small equality residual if we ran out of rounds; the Newton
    // iterations will keep correcting it.
    let rnorm = p
        .equalities()
        .iter()
        .map(|e| e.residual(&x).abs())
        .fold(0.0_f64, f64::max);
    (rnorm <= EQ_RESIDUAL_LOOSE_TOL * scale).then_some(x)
}

fn strictly_feasible(p: &NlpProblem, x: &[f64], margin: f64) -> bool {
    for ((&xj, &lo), &hi) in x.iter().zip(p.lowers()).zip(p.uppers()) {
        if lo == hi {
            if xj != lo {
                return false;
            }
            continue;
        }
        if (lo.is_finite() && xj <= lo + margin * (1.0 + lo.abs()))
            || (hi.is_finite() && xj >= hi - margin * (1.0 + hi.abs()))
        {
            return false;
        }
    }
    p.constraints().iter().all(|c| c.eval(x) < -margin)
}

/// Phase 1: minimize `s` over `g_i(x) - s <= 0` (equalities preserved);
/// a strictly feasible point exists iff the optimum is negative.
fn phase_one(
    p: &NlpProblem,
    x0: &[f64],
    opts: &BarrierOptions,
    newton_total: &mut usize,
    tally: &mut FactorTally,
    scratch: &mut SparseWorkspace,
) -> Result<Option<Vec<f64>>, NlpStatus> {
    let n = p.num_vars();
    let mut aug = NlpProblem::new();
    for j in 0..n {
        aug.add_var(0.0, p.lowers()[j], p.uppers()[j]);
    }
    let s = aug.add_var(1.0, f64::NEG_INFINITY, f64::INFINITY);
    for c in p.constraints() {
        let mut relaxed = c.clone();
        relaxed.linear.push((s, -1.0));
        relaxed.name = format!("{}|relaxed", c.name);
        aug.add_constraint(relaxed);
    }
    for e in p.equalities() {
        aug.add_linear_eq(e.coeffs.clone(), e.rhs);
    }

    // Start: x0 (already on the equality manifold, strictly inside the
    // box), slack above the worst violation.
    let mut z0 = x0.to_vec();
    let viol = p
        .constraints()
        .iter()
        .map(|c| c.eval(&z0))
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0);
    z0.push(viol + 1.0 + viol * PHASE1_HEADROOM_REL);

    // Exit only once the point is *meaningfully* interior, scaled by the
    // initial violation. Exiting at the first sign change (a hair past the
    // boundary, slacks ~1e-8) hands the main barrier a start whose Hessian
    // is ~1/slack² conditioned; Newton steps then go numerically dead and
    // the solve stalls at the phase-1 point while reporting Optimal. When
    // the feasible region is too thin to reach this depth, phase 1 simply
    // runs to its own optimum, which is the deepest interior point anyway.
    let target = -(2.0 * opts.interior_margin).max(PHASE1_DEPTH_FRAC * (1.0 + viol));
    let sol = barrier_loop(
        &aug,
        z0,
        opts.mu0 * opts.mu0_scale,
        opts,
        newton_total,
        tally,
        scratch,
        Some((s, target)),
    );
    match sol.status {
        NlpStatus::Optimal | NlpStatus::IterationLimit => {
            if !sol.x.is_empty() && sol.x[s] < -opts.interior_margin {
                let x: Vec<f64> = sol.x[..n].to_vec();
                if strictly_feasible(p, &x, opts.interior_margin * 0.5) {
                    return Ok(Some(x));
                }
            }
            if sol.status == NlpStatus::IterationLimit {
                Err(NlpStatus::IterationLimit)
            } else {
                Ok(None)
            }
        }
        NlpStatus::Unbounded => {
            if !sol.x.is_empty() {
                let x: Vec<f64> = sol.x[..n].to_vec();
                if strictly_feasible(p, &x, opts.interior_margin * 0.5) {
                    return Ok(Some(x));
                }
            }
            Err(NlpStatus::IterationLimit)
        }
        NlpStatus::Infeasible => Ok(None),
    }
}

/// Running totals of factorization and predictor-corrector work across one
/// solve (phase 1 plus the main loop); attached to the returned
/// [`NlpSolution`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FactorTally {
    pub(crate) factorizations: u64,
    pub(crate) fill_nnz: u64,
    pub(crate) predictor_steps: u64,
    pub(crate) corrector_steps: u64,
    pub(crate) line_search_backtracks: u64,
}

/// Sparse Newton/KKT system with its symbolic analysis done once per
/// solve: the structural pattern (constraint-support cliques, barrier
/// diagonal, equality blocks) is fixed for a given problem, so each
/// iteration only rewrites the stored values and refactorizes numerically
/// — re-analyze never.
pub(crate) struct SparseKkt<'a> {
    pub(crate) mat: CscMatrix,
    /// `(row, col)` of each stored nonzero, in storage order.
    positions: Vec<(usize, usize)>,
    /// Symbolic Cholesky (unconstrained case, `m_eq == 0`).
    pub(crate) chol: Option<CholSymbolic>,
    /// Symbolic LU (equality-constrained KKT case).
    pub(crate) lu: Option<LuSymbolic>,
    /// Caller-held factorization scratch, reused across solves.
    pub(crate) ws: &'a mut SparseWorkspace,
    k: usize,
    m_eq: usize,
}

impl<'a> SparseKkt<'a> {
    /// Builds the structural pattern and runs the symbolic analysis.
    /// Returns `None` when the analysis itself fails (degenerate inputs);
    /// callers then stay on the dense path.
    pub(crate) fn build(
        p: &NlpProblem,
        col_of: &std::collections::HashMap<usize, usize>,
        a_eq: &Matrix,
        k: usize,
        m_eq: usize,
        ws: &'a mut SparseWorkspace,
    ) -> Option<SparseKkt<'a>> {
        let dim = if m_eq == 0 { k } else { k + m_eq };
        // Collect the structural pattern col-major so the triplet build
        // below preserves iteration order.
        let mut pos = std::collections::BTreeSet::new();
        for i in 0..dim {
            pos.insert((i, i));
        }
        for c in p.constraints() {
            // The barrier Hessian of -μ·ln(-g) couples every pair of
            // variables in the constraint's support (∇g ∇gᵀ term).
            let mut sup: Vec<usize> = c
                .linear
                .iter()
                .map(|&(v, _)| v)
                .chain(c.nonlinear.iter().map(|(v, _)| *v))
                .filter_map(|v| col_of.get(&v).copied())
                .collect();
            sup.sort_unstable();
            sup.dedup();
            for &a in &sup {
                for &b in &sup {
                    pos.insert((a, b));
                }
            }
        }
        for r in 0..m_eq {
            for c in 0..k {
                // Structural-pattern detection: an exactly-zero entry means
                // "no edge" in the KKT sparsity graph; a tolerance here
                // would drop small but real couplings from the symbolic
                // factorization.
                if !exactly_zero(a_eq[(r, c)]) {
                    pos.insert((c, k + r));
                    pos.insert((k + r, c));
                }
            }
        }
        let triplets: Vec<(usize, usize, f64)> =
            pos.iter().map(|&(col, row)| (row, col, 1.0)).collect();
        let mat = CscMatrix::from_triplets(dim, dim, &triplets).ok()?;
        let positions: Vec<(usize, usize)> = (0..dim)
            .flat_map(|j| {
                let (rows, _) = mat.col(j);
                rows.iter().map(move |&i| (i, j)).collect::<Vec<_>>()
            })
            .collect();
        let (chol, lu) = if m_eq == 0 {
            (Some(CholSymbolic::analyze(&mat).ok()?), None)
        } else {
            (None, Some(LuSymbolic::analyze(&mat).ok()?))
        };
        Some(SparseKkt {
            mat,
            positions,
            chol,
            lu,
            ws,
            k,
            m_eq,
        })
    }

    /// Rewrites the stored values from the current dense Hessian (and the
    /// fixed equality matrix), preserving the analyzed storage layout.
    pub(crate) fn fill(&mut self, hess: &Matrix, a_eq: &Matrix) {
        let (k, m_eq) = (self.k, self.m_eq);
        let positions = &self.positions;
        for (s, v) in self.mat.values_mut().iter_mut().enumerate() {
            let (i, j) = positions[s];
            *v = if i < k && j < k {
                if m_eq == 0 {
                    hess[(i, j)]
                } else if i == j {
                    hess[(i, i)] + KKT_REG * (1.0 + hess[(i, i)].abs())
                } else {
                    hess[(i, j)]
                }
            } else if i >= k && j < k {
                a_eq[(i - k, j)]
            } else if i < k && j >= k {
                a_eq[(j - k, i)]
            } else if i == j {
                -KKT_REG
            } else {
                0.0
            };
        }
    }

    /// Newton step for the unconstrained case: regularized sparse
    /// Cholesky, mirroring the dense `Cholesky::new_regularized` fallback
    /// semantics. Returns `None` on factorization failure.
    fn cholesky_step(
        &mut self,
        hess: &Matrix,
        a_eq: &Matrix,
        grad: &[f64],
        tally: &mut FactorTally,
    ) -> Option<Vec<f64>> {
        self.fill(hess, a_eq);
        let sym = self.chol.as_ref()?;
        let (ch, _) =
            SparseCholesky::factorize_regularized(&self.mat, sym, HESS_CHOL_REG, self.ws).ok()?;
        tally.factorizations += 1;
        tally.fill_nnz += ch.fill_nnz() as u64;
        let rhs: Vec<f64> = grad.iter().map(|v| -v).collect();
        Some(ch.solve(&rhs))
    }

    /// Newton step for the equality-constrained KKT system via sparse LU.
    /// Returns the primal part `d` (first `k` entries) or `None` on
    /// factorization failure.
    fn kkt_step(
        &mut self,
        hess: &Matrix,
        a_eq: &Matrix,
        rhs: &[f64],
        tally: &mut FactorTally,
    ) -> Option<Vec<f64>> {
        self.fill(hess, a_eq);
        let sym = self.lu.as_ref()?;
        let f = SparseLu::factorize(&self.mat, sym, self.ws).ok()?;
        tally.factorizations += 1;
        tally.fill_nnz += f.fill_nnz() as u64;
        Some(f.solve(rhs)[..self.k].to_vec())
    }
}

/// Core barrier loop from a strictly feasible start.
///
/// `mu0` is the initial barrier weight (warm starts pass a reduced one);
/// `early_exit`: optional `(var, threshold)` — stop as soon as `x[var]`
/// drops below the threshold (used by phase 1).
#[allow(clippy::too_many_arguments)] // problem + accumulators + scratch; a struct would just rename the list
fn barrier_loop(
    p: &NlpProblem,
    mut x: Vec<f64>,
    mu0: f64,
    opts: &BarrierOptions,
    newton_total: &mut usize,
    tally: &mut FactorTally,
    scratch: &mut SparseWorkspace,
    early_exit: Option<(usize, f64)>,
) -> NlpSolution {
    let free = free_vars(p);
    for ((xj, &lo), &hi) in x.iter_mut().zip(p.lowers()).zip(p.uppers()) {
        if lo == hi {
            *xj = lo;
        }
    }
    if free.is_empty() {
        let feasible = p.max_violation(&x) <= PINNED_FEAS_TOL;
        return NlpSolution {
            status: if feasible {
                NlpStatus::Optimal
            } else {
                NlpStatus::Infeasible
            },
            objective: if feasible {
                p.objective_value(&x)
            } else {
                f64::INFINITY
            },
            multipliers: vec![0.0; p.num_constraints()],
            x,
            newton_iters: *newton_total,
            warm_started: false,
            factorizations: 0,
            fill_nnz: 0,
            predictor_steps: 0,
            corrector_steps: 0,
            line_search_backtracks: 0,
        };
    }

    // Predictor-corrector path: the Mehrotra loop replaces the fixed-μ
    // schedule whenever there is at least one barrier term to center on.
    // Pure equality-constrained problems (no inequalities, no finite
    // bounds over the free coordinates) have no complementarity to drive
    // and stay on the damped-Newton loop below.
    if !opts.legacy_schedule {
        let has_barrier_terms = p.num_constraints() > 0
            || free
                .iter()
                .any(|&j| p.lowers()[j].is_finite() || p.uppers()[j].is_finite());
        if has_barrier_terms {
            let sol = crate::mpc::run(
                p,
                x.clone(),
                &free,
                mu0,
                opts,
                newton_total,
                tally,
                scratch,
                early_exit,
            );
            // The predictor-corrector loop is the fast path, not the only
            // path: an instance whose long primal journey defeats the
            // central-path neighborhood (a huge box entered far from the
            // optimum) can exhaust its budget off-center. Fall back to the
            // damped-Newton schedule from the same start instead of
            // returning the cut-short solve; the counters keep both halves,
            // so the fallback is paid for, never hidden.
            if sol.status != NlpStatus::IterationLimit {
                return sol;
            }
        }
    }

    // Equality matrix over the free subspace.
    let m_eq = p.equalities().len();
    let k = free.len();
    let col_of: std::collections::HashMap<usize, usize> =
        free.iter().enumerate().map(|(c, &j)| (j, c)).collect();
    let mut a_eq = Matrix::zeros(m_eq, k);
    for (r, e) in p.equalities().iter().enumerate() {
        for &(v, co) in &e.coeffs {
            if let Some(&c) = col_of.get(&v) {
                a_eq[(r, c)] += co;
            }
        }
    }

    let barrier_count = (p.num_constraints()
        + free
            .iter()
            .map(|&j| p.lowers()[j].is_finite() as usize + p.uppers()[j].is_finite() as usize)
            .sum::<usize>())
    .max(1);

    // Sparse path: analyze the structural KKT pattern once per solve;
    // every Newton iteration below only refactorizes numerically.
    let kkt_dim = if m_eq == 0 { k } else { k + m_eq };
    let mut sparse_kkt = if opts.backend.use_sparse(kkt_dim) {
        SparseKkt::build(p, &col_of, &a_eq, k, m_eq, scratch)
    } else {
        None
    };

    let mut mu = mu0;
    for _outer in 0..opts.max_outer {
        for _inner in 0..opts.max_newton {
            *newton_total += 1;
            let (grad, hess) = barrier_derivatives(p, &x, mu, &free);

            // KKT system: [H Âᵀ; Â 0] [d; λ] = [-g; r].
            let step = if m_eq == 0 {
                let sparse_step = sparse_kkt
                    .as_mut()
                    .and_then(|sk| sk.cholesky_step(&hess, &a_eq, &grad, tally));
                match sparse_step {
                    Some(s) => s,
                    None if sparse_kkt.is_some() => grad.iter().map(|v| -v).collect(),
                    None => match Cholesky::new_regularized(&hess, HESS_CHOL_REG) {
                        Ok((ch, _)) => {
                            let rhs: Vec<f64> = grad.iter().map(|v| -v).collect();
                            ch.solve(&rhs)
                        }
                        Err(_) => grad.iter().map(|v| -v).collect(),
                    },
                }
            } else {
                let dim = k + m_eq;
                let mut rhs = vec![0.0; dim];
                for i in 0..k {
                    rhs[i] = -grad[i];
                }
                for (r, e) in p.equalities().iter().enumerate() {
                    rhs[k + r] = -e.residual(&x);
                }
                let sparse_step = sparse_kkt
                    .as_mut()
                    .and_then(|sk| sk.kkt_step(&hess, &a_eq, &rhs, tally));
                match sparse_step {
                    Some(s) => s,
                    None if sparse_kkt.is_some() => grad.iter().map(|v| -v).collect(),
                    None => {
                        let mut kkt = Matrix::zeros(dim, dim);
                        for i in 0..k {
                            for j2 in 0..k {
                                kkt[(i, j2)] = hess[(i, j2)];
                            }
                            // Tiny primal regularization keeps the system
                            // solvable when H is singular on the null space
                            // boundary.
                            kkt[(i, i)] += KKT_REG * (1.0 + hess[(i, i)].abs());
                        }
                        for r in 0..m_eq {
                            for c in 0..k {
                                kkt[(k + r, c)] = a_eq[(r, c)];
                                kkt[(c, k + r)] = a_eq[(r, c)];
                            }
                            // Small dual regularization for dependent rows.
                            kkt[(k + r, k + r)] = -KKT_REG;
                        }
                        match Lu::new(&kkt) {
                            Ok(lu) => lu.solve(&rhs)[..k].to_vec(),
                            Err(_) => grad.iter().map(|v| -v).collect(),
                        }
                    }
                }
            };
            if !step.iter().all(|v| v.is_finite()) {
                break;
            }
            let xnorm = 1.0 + free.iter().map(|&j| x[j].abs()).fold(0.0, f64::max);
            let step_norm = step.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if step_norm < opts.newton_tol * xnorm * (1.0 + mu) {
                break;
            }

            // Fraction-to-boundary: clamp the step so box bounds stay
            // strictly satisfied. Without this, a near-singular direction in
            // a weakly-curved coordinate (epigraph variables in huge boxes)
            // forces dozens of Armijo halvings per iteration and the solve
            // crawls.
            let mut alpha_bound = f64::INFINITY;
            for (c, &j) in free.iter().enumerate() {
                let d = step[c];
                if d < 0.0 && p.lowers()[j].is_finite() {
                    alpha_bound = alpha_bound.min((x[j] - p.lowers()[j]) / (-d));
                } else if d > 0.0 && p.uppers()[j].is_finite() {
                    alpha_bound = alpha_bound.min((p.uppers()[j] - x[j]) / d);
                }
            }

            // Backtracking line search: strict feasibility + descent.
            let phi0 = barrier_value(p, &x, mu, &free);
            let slope: f64 = grad.iter().zip(&step).map(|(g, s)| g * s).sum();
            let mut alpha = (FRACTION_TO_BOUNDARY * alpha_bound).min(1.0);
            let mut accepted = false;
            for _ in 0..60 {
                let mut cand = x.clone();
                for (c, &j) in free.iter().enumerate() {
                    cand[j] += alpha * step[c];
                }
                if strictly_inside(p, &cand, &free) {
                    let phi = barrier_value(p, &cand, mu, &free);
                    // Accept on sufficient decrease, or on any decrease when
                    // the model slope is unhelpful (KKT steps with equality
                    // correction are not always descent directions for φ).
                    if phi <= phi0 + ARMIJO_C1 * alpha * slope || phi < phi0 {
                        x = cand;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            if !accepted {
                break;
            }
            if x.iter().any(|v| v.abs() > DIVERGENCE_LIMIT) {
                return NlpSolution {
                    status: NlpStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    multipliers: vec![0.0; p.num_constraints()],
                    x,
                    newton_iters: *newton_total,
                    warm_started: false,
                    factorizations: 0,
                    fill_nnz: 0,
                    predictor_steps: 0,
                    corrector_steps: 0,
                    line_search_backtracks: 0,
                };
            }
            if let Some((var, threshold)) = early_exit {
                if x[var] < threshold {
                    return finish(p, x, mu, *newton_total);
                }
            }
        }

        if mu * barrier_count as f64 <= opts.gap_tol {
            return finish(p, x, mu, *newton_total);
        }
        mu *= opts.mu_shrink;
    }
    let mut out = finish(p, x, mu, *newton_total);
    out.status = NlpStatus::IterationLimit;
    out
}

fn finish(p: &NlpProblem, x: Vec<f64>, mu: f64, newton_iters: usize) -> NlpSolution {
    let raw: Vec<f64> = p
        .constraints()
        .iter()
        .map(|c| {
            let g = c.eval(&x);
            if g < 0.0 {
                mu / (-g)
            } else {
                0.0
            }
        })
        .collect();
    finish_with_duals(p, x, &raw, newton_iters)
}

/// Like `finish`, but starting from explicit raw inequality duals (the
/// predictor-corrector loop carries true dual iterates rather than the
/// `μ/(-g)` estimates); both paths share the least-squares refinement.
pub(crate) fn finish_with_duals(
    p: &NlpProblem,
    x: Vec<f64>,
    raw: &[f64],
    newton_iters: usize,
) -> NlpSolution {
    let multipliers = refine_multipliers(p, &x, raw);
    NlpSolution {
        status: NlpStatus::Optimal,
        objective: p.objective_value(&x),
        multipliers,
        x,
        newton_iters,
        warm_started: false,
        factorizations: 0,
        fill_nnz: 0,
        predictor_steps: 0,
        corrector_steps: 0,
        line_search_backtracks: 0,
    }
}

/// Replaces the barrier dual estimates `μ/(-g_i)` with a stationarity fit.
///
/// The raw estimates degrade whenever the last barrier rounds stall: at tiny
/// `μ` the per-step decrease of φ falls below f64 noise, the line search
/// rejects every step, and `μ` keeps shrinking while the slacks stay at an
/// older `μ`'s scale — deflating every active multiplier by the same factor
/// even though the primal point is optimal to tolerance. Since `x` is good,
/// recover duals from the KKT stationarity condition instead: least-squares
/// solve `c + Σ λ_i ∇g_i + Aᵀν ≈ 0` over the apparently-active inequalities
/// (and all equalities), restricted to coordinates away from their box
/// bounds (bound multipliers are not modeled). Falls back to the raw
/// estimates when the system is degenerate or produces negative duals.
fn refine_multipliers(p: &NlpProblem, x: &[f64], raw: &[f64]) -> Vec<f64> {
    let max_raw = raw.iter().fold(0.0_f64, |m, &l| m.max(l));
    if max_raw <= 0.0 {
        return raw.to_vec();
    }
    // Active set by *relative* magnitude: a stalled finish deflates all
    // active multipliers by one common factor, so ratios remain reliable.
    let active: Vec<usize> = (0..raw.len())
        .filter(|&i| raw[i] > ACTIVE_DUAL_REL * max_raw)
        .collect();
    let lo = p.lowers();
    let hi = p.uppers();
    let interior: Vec<usize> = (0..p.num_vars())
        .filter(|&j| {
            let margin = INTERIOR_REL_MARGIN * (1.0 + x[j].abs());
            x[j] > lo[j] + margin && x[j] < hi[j] - margin
        })
        .collect();
    let cols = active.len() + p.equalities().len();
    if cols == 0 || interior.len() < cols {
        return raw.to_vec();
    }
    let mut a = Matrix::zeros(interior.len(), cols);
    let mut grad = vec![0.0; p.num_vars()];
    for (ci, &i) in active.iter().enumerate() {
        grad.iter_mut().for_each(|g| *g = 0.0);
        p.constraints()[i].add_gradient(x, &mut grad, 1.0);
        for (ri, &j) in interior.iter().enumerate() {
            a[(ri, ci)] = grad[j];
        }
    }
    for (ei, e) in p.equalities().iter().enumerate() {
        for &(v, co) in &e.coeffs {
            if let Some(ri) = interior.iter().position(|&j| j == v) {
                a[(ri, active.len() + ei)] = co;
            }
        }
    }
    let rhs: Vec<f64> = interior.iter().map(|&j| -p.costs()[j]).collect();
    let Ok(qr) = Qr::new(&a) else {
        return raw.to_vec();
    };
    let Ok(fit) = qr.solve_least_squares(&rhs) else {
        return raw.to_vec();
    };
    // Inequality duals must be nonnegative; a clearly negative fit means the
    // active-set guess was wrong, so keep the raw estimates.
    if active
        .iter()
        .enumerate()
        .any(|(ci, _)| fit[ci] < -DUAL_NEG_TOL * (1.0 + max_raw))
    {
        return raw.to_vec();
    }
    let mut out = raw.to_vec();
    for (ci, &i) in active.iter().enumerate() {
        out[i] = fit[ci].max(0.0);
    }
    out
}

pub(crate) fn strictly_inside(p: &NlpProblem, x: &[f64], free: &[usize]) -> bool {
    for &j in free {
        let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
        if (lo.is_finite() && x[j] <= lo) || (hi.is_finite() && x[j] >= hi) {
            return false;
        }
    }
    p.constraints().iter().all(|c| c.eval(x) < 0.0)
}

/// Barrier objective value (assumes strict feasibility).
pub(crate) fn barrier_value(p: &NlpProblem, x: &[f64], mu: f64, free: &[usize]) -> f64 {
    let mut v = p.objective_value(x);
    for c in p.constraints() {
        v -= mu * (-c.eval(x)).ln();
    }
    for &j in free {
        let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
        if lo.is_finite() {
            v -= mu * (x[j] - lo).ln();
        }
        if hi.is_finite() {
            v -= mu * (hi - x[j]).ln();
        }
    }
    v
}

/// Gradient and Hessian of the barrier objective restricted to free vars.
fn barrier_derivatives(p: &NlpProblem, x: &[f64], mu: f64, free: &[usize]) -> (Vec<f64>, Matrix) {
    let n = p.num_vars();
    let k = free.len();
    let mut grad_full = p.costs().to_vec();
    let mut hess_diag_full = vec![0.0; n];
    let mut hess_full = Matrix::zeros(n, n);

    for c in p.constraints() {
        let g = c.eval(x);
        // Strict feasibility is only a meaningful invariant for finite
        // evaluations: hostile-but-valid coefficients (~1e17, reachable
        // through the wire front) overflow c.eval to inf/NaN, and those
        // flow through the derivatives into the regularized factorization,
        // which fails fast on non-finite input and ends the solve cleanly.
        debug_assert!(
            g < 0.0 || !g.is_finite(),
            "barrier derivative requested at infeasible point"
        );
        let inv = 1.0 / (-g);
        c.add_gradient(x, &mut grad_full, mu * inv);
        let cg = c.gradient(x);
        for a in 0..n {
            if exactly_zero(cg[a]) {
                continue;
            }
            for b in a..n {
                if !exactly_zero(cg[b]) {
                    let v = mu * inv * inv * cg[a] * cg[b];
                    hess_full[(a, b)] += v;
                    if a != b {
                        hess_full[(b, a)] += v;
                    }
                }
            }
        }
        c.add_hessian_diag(x, &mut hess_diag_full, mu * inv);
    }
    for &j in free {
        let (lo, hi) = (p.lowers()[j], p.uppers()[j]);
        if lo.is_finite() {
            let d = x[j] - lo;
            grad_full[j] -= mu / d;
            hess_diag_full[j] += mu / (d * d);
        }
        if hi.is_finite() {
            let d = hi - x[j];
            grad_full[j] += mu / d;
            hess_diag_full[j] += mu / (d * d);
        }
    }
    for j in 0..n {
        hess_full[(j, j)] += hess_diag_full[j];
    }

    let grad: Vec<f64> = free.iter().map(|&j| grad_full[j]).collect();
    let mut hess = Matrix::zeros(k, k);
    for (ai, &a) in free.iter().enumerate() {
        for (bi, &b) in free.iter().enumerate() {
            hess[(ai, bi)] = hess_full[(a, b)];
        }
    }
    (grad, hess)
}
