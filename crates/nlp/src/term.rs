//! Univariate building blocks of the HSLB performance functions.

/// A univariate term `φ(x)`; the performance function of the papers is the
/// sum `a·x^(-c) + b·x + d` ([`Term::PowerDecay`] + [`Term::Linear`] +
/// constant folded into the constraint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Term {
    /// `a · x^(-c)` with `a >= 0`, `c > 0`: the perfectly-scalable part
    /// `T_sca` of the paper's model. Convex and decreasing for `x > 0`.
    PowerDecay { a: f64, c: f64 },
    /// `b · x^c` with `b >= 0`, `c >= 1`: the paper's increasing `T_nln`
    /// part (on Intrepid the fitted exponent is 1, i.e. linear).
    PowerGrowth { b: f64, c: f64 },
    /// `k · x` (any sign) — used for coupling variables like `-T`.
    Linear { k: f64 },
}

impl Term {
    /// Value at `x` (requires `x > 0` for the power terms).
    pub fn eval(&self, x: f64) -> f64 {
        match *self {
            Term::PowerDecay { a, c } => a * x.powf(-c),
            Term::PowerGrowth { b, c } => b * x.powf(c),
            Term::Linear { k } => k * x,
        }
    }

    /// First derivative at `x`.
    pub fn d1(&self, x: f64) -> f64 {
        match *self {
            Term::PowerDecay { a, c } => -a * c * x.powf(-c - 1.0),
            Term::PowerGrowth { b, c } => b * c * x.powf(c - 1.0),
            Term::Linear { k } => k,
        }
    }

    /// Second derivative at `x`.
    pub fn d2(&self, x: f64) -> f64 {
        match *self {
            Term::PowerDecay { a, c } => a * c * (c + 1.0) * x.powf(-c - 2.0),
            Term::PowerGrowth { b, c } => b * c * (c - 1.0) * x.powf(c - 2.0),
            Term::Linear { .. } => 0.0,
        }
    }

    /// Whether the term is convex on `x > 0`.
    pub fn is_convex(&self) -> bool {
        match *self {
            Term::PowerDecay { a, c } => a >= 0.0 && c > 0.0,
            Term::PowerGrowth { b, c } => b >= 0.0 && c >= 1.0,
            Term::Linear { .. } => true,
        }
    }
}

/// A univariate function: sum of [`Term`]s applied to one variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalarFn {
    terms: Vec<Term>,
}

impl ScalarFn {
    /// Empty (identically zero) function.
    pub fn new() -> Self {
        ScalarFn::default()
    }

    /// From a list of terms.
    pub fn from_terms(terms: Vec<Term>) -> Self {
        ScalarFn { terms }
    }

    /// The paper's performance function `a·x^(-c) + b·x` (the additive
    /// constant `d` belongs to the constraint, not the variable term).
    pub fn perf_model(a: f64, b: f64, c: f64) -> Self {
        let mut terms = Vec::new();
        if !hslb_linalg::approx::exactly_zero(a) {
            terms.push(Term::PowerDecay { a, c });
        }
        if !hslb_linalg::approx::exactly_zero(b) {
            terms.push(Term::Linear { k: b });
        }
        ScalarFn { terms }
    }

    /// Adds a term.
    pub fn push(&mut self, t: Term) {
        self.terms.push(t);
    }

    /// The underlying terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Value at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.terms.iter().map(|t| t.eval(x)).sum()
    }

    /// First derivative at `x`.
    pub fn d1(&self, x: f64) -> f64 {
        self.terms.iter().map(|t| t.d1(x)).sum()
    }

    /// Second derivative at `x`.
    pub fn d2(&self, x: f64) -> f64 {
        self.terms.iter().map(|t| t.d2(x)).sum()
    }

    /// Convex iff every term is convex (sufficient condition; exactly the
    /// argument the paper makes from coefficient positivity).
    pub fn is_convex(&self) -> bool {
        self.terms.iter().all(Term::is_convex)
    }

    /// Whether the function is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivs(t: &Term, x: f64) {
        let h = 1e-6 * x.max(1.0);
        let num_d1 = (t.eval(x + h) - t.eval(x - h)) / (2.0 * h);
        let num_d2 = (t.eval(x + h) - 2.0 * t.eval(x) + t.eval(x - h)) / (h * h);
        assert!(
            (t.d1(x) - num_d1).abs() < 1e-4 * (1.0 + num_d1.abs()),
            "{t:?} d1 at {x}"
        );
        assert!(
            (t.d2(x) - num_d2).abs() < 1e-2 * (1.0 + num_d2.abs()),
            "{t:?} d2 at {x}"
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let terms = [
            Term::PowerDecay { a: 1500.0, c: 1.0 },
            Term::PowerDecay { a: 20.0, c: 0.7 },
            Term::PowerGrowth { b: 0.02, c: 1.5 },
            Term::Linear { k: -3.0 },
        ];
        for t in &terms {
            for &x in &[1.0, 8.0, 100.0, 2048.0] {
                check_derivs(t, x);
            }
        }
    }

    #[test]
    fn perf_model_matches_paper_formula() {
        let (a, b, c, d) = (1495.0, 0.001, 1.0, 1.5);
        let f = ScalarFn::perf_model(a, b, c);
        for &n in &[24.0, 128.0, 384.0] {
            let expected = a / n + b * n; // c = 1
            assert!((f.eval(n) + d - (expected + d)).abs() < 1e-9);
        }
    }

    #[test]
    fn perf_model_drops_zero_terms() {
        let f = ScalarFn::perf_model(100.0, 0.0, 1.0);
        assert_eq!(f.terms().len(), 1);
        let g = ScalarFn::perf_model(0.0, 0.0, 1.0);
        assert!(g.is_zero());
    }

    #[test]
    fn convexity_classification() {
        assert!(Term::PowerDecay { a: 5.0, c: 1.0 }.is_convex());
        assert!(!Term::PowerDecay { a: -5.0, c: 1.0 }.is_convex());
        assert!(Term::PowerGrowth { b: 2.0, c: 1.0 }.is_convex());
        assert!(!Term::PowerGrowth { b: 2.0, c: 0.5 }.is_convex());
        assert!(Term::Linear { k: -9.0 }.is_convex());

        let f = ScalarFn::from_terms(vec![
            Term::PowerDecay { a: 1.0, c: 1.0 },
            Term::Linear { k: 1.0 },
        ]);
        assert!(f.is_convex());
    }

    #[test]
    fn decay_is_decreasing_growth_is_increasing() {
        let dec = Term::PowerDecay { a: 10.0, c: 1.2 };
        let grw = Term::PowerGrowth { b: 0.5, c: 1.3 };
        assert!(dec.eval(10.0) > dec.eval(20.0));
        assert!(dec.d1(10.0) < 0.0);
        assert!(grw.eval(10.0) < grw.eval(20.0));
        assert!(grw.d1(10.0) > 0.0);
    }

    #[test]
    fn scalar_fn_sums() {
        let mut f = ScalarFn::new();
        f.push(Term::Linear { k: 2.0 });
        f.push(Term::Linear { k: 3.0 });
        assert!((f.eval(4.0) - 20.0).abs() < 1e-12);
        assert!((f.d1(4.0) - 5.0).abs() < 1e-12);
        assert_eq!(f.d2(4.0), 0.0);
    }
}
