//! Structured convex NLP solver — the "filterSQP" of this reproduction.
//!
//! Every nonlinearity in the HSLB models is a sum of **univariate** terms of
//! the performance function `T(n) = a·n^(-c) + b·n + d` attached to a single
//! variable. Rather than a general expression tree, constraints are stored
//! structurally as
//!
//! ```text
//! g(x) = Σ linear_j x_j + Σ φ_v(x_v) + const <= 0
//! ```
//!
//! with each `φ` a [`ScalarFn`] (sum of [`Term`]s). This makes gradients,
//! Hessians, convexity checks and outer-approximation linearizations exact
//! and trivially cheap — the property §III-E of the paper relies on ("the
//! positivity of the coefficients implies that the nonlinear functions are
//! convex, which ensures that MINOTAUR finds a global solution").
//!
//! The solver is a log-barrier interior-point method with damped Newton
//! steps ([`barrier::solve`]), plus a phase-1 routine that manufactures a
//! strictly feasible starting point by relaxing all constraints with a slack
//! variable.

//! # Example
//!
//! Minimize `T` over `T >= 100/n` with `n <= 20`:
//!
//! ```
//! use hslb_nlp::{solve, ConstraintFn, NlpProblem, NlpStatus, ScalarFn};
//!
//! let mut p = NlpProblem::new();
//! let n = p.add_var(0.0, 1.0, 20.0);
//! let t = p.add_var(1.0, 0.0, 1e6);
//! p.add_constraint(
//!     ConstraintFn::new("perf")
//!         .nonlinear_term(n, ScalarFn::perf_model(100.0, 0.0, 1.0))
//!         .linear_term(t, -1.0),
//! );
//! let sol = solve(&p).unwrap();
//! assert_eq!(sol.status, NlpStatus::Optimal);
//! assert!((sol.objective - 5.0).abs() < 1e-3); // 100/20
//! ```

pub mod barrier;
pub mod mpc;
pub mod problem;
pub mod term;

pub use barrier::{
    solve, solve_warm_with, solve_warm_with_workspace, solve_with, BarrierOptions, NlpError,
    NlpSolution, NlpStatus, WarmStart,
};
pub use problem::{ConstraintFn, NlpProblem};
pub use term::{ScalarFn, Term};
