//! LP solve outcomes.

/// Terminal status of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
    /// Iteration limit was reached before convergence (numerical trouble).
    IterationLimit,
}

/// Solution of a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    /// Primal values of the structural variables (empty unless `Optimal`).
    pub x: Vec<f64>,
    /// Objective value (`f64::INFINITY` when infeasible, `NEG_INFINITY` when
    /// unbounded).
    pub objective: f64,
    /// Dual values (simplex multipliers), one per row (empty unless
    /// `Optimal`).
    pub duals: Vec<f64>,
    /// Simplex iterations across both phases (includes `dual_pivots`).
    pub iterations: usize,
    /// Dual-simplex pivots spent restoring primal feasibility from a warm
    /// basis (zero on cold solves).
    pub dual_pivots: usize,
    /// Whether a saved basis was actually reused (`solve_warm` fell back to
    /// a cold solve when this is `false`).
    pub warm_used: bool,
    /// Basis refactorizations performed (both backends).
    pub factorizations: u64,
    /// Product-form eta updates appended between refactorizations (sparse
    /// backend only; the dense path updates its explicit inverse in place).
    pub factor_updates: u64,
    /// Cumulative nonzeros across all sparse basis factors (zero on the
    /// dense path).
    pub fill_nnz: u64,
}

impl LpSolution {
    /// Whether the run ended with a usable optimal point.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    pub(crate) fn infeasible(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            x: Vec::new(),
            objective: f64::INFINITY,
            duals: Vec::new(),
            iterations,
            dual_pivots: 0,
            warm_used: false,
            factorizations: 0,
            factor_updates: 0,
            fill_nnz: 0,
        }
    }

    pub(crate) fn unbounded(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            x: Vec::new(),
            objective: f64::NEG_INFINITY,
            duals: Vec::new(),
            iterations,
            dual_pivots: 0,
            warm_used: false,
            factorizations: 0,
            factor_updates: 0,
            fill_nnz: 0,
        }
    }
}
