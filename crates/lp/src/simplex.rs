//! Bounded-variable two-phase primal simplex, plus a dual-simplex warm
//! start for cut loops.
//!
//! Layout: one slack column per row turns every constraint into an equality
//! with bounds on the slack; artificial columns are added only for rows whose
//! initial slack value falls outside the slack bounds. Phase 1 minimizes the
//! sum of artificials; Phase 2 minimizes the true objective with artificials
//! frozen at zero.
//!
//! The basis lives behind [`BasisFactor`]: at paper scale (row count below
//! the [`hslb_linalg::SPARSE_CROSSOVER_DIM`] crossover) the inverse is kept
//! explicitly — the historical dense tableau, bit-identical to every pinned
//! counter — while above the crossover (or with `LinalgBackend::Sparse`
//! forced) the basis is held as a sparse LU factorization with
//! Bartels–Golub-style product-form eta updates per pivot. Both
//! representations are refactorized periodically for numerical hygiene.
//!
//! [`solve_warm`] reuses the basis saved by a previous solve. Neither
//! appending a `<=` cut row nor tightening variable bounds changes the cost
//! vector, so the saved basis stays *dual*-feasible: the new cut's slack
//! enters the basis, out-of-bound nonbasic variables snap to their moved
//! bounds, and a handful of dual pivots restore primal feasibility — no
//! Phase 1 artificials, no cold Phase 2.
// lint:allow-file(slice-index): the tableau kernel indexes basis/column
// arrays end to end; every index is derived from tableau dimensions fixed
// at construction, and iterator forms would obscure the pivot algebra.

use crate::model::{LinearProgram, RowSense};
use crate::solution::{LpSolution, LpStatus};
use hslb_linalg::{CscMatrix, LinalgBackend, Lu, LuSymbolic, Matrix, SparseLu, SparseWorkspace};
use hslb_obs::{Event, Trace};

use hslb_linalg::approx::exactly_zero;

/// Default reduced-cost optimality tolerance.
pub const DEFAULT_OPT_TOL: f64 = 1e-9;
/// Default primal feasibility tolerance (bound violations, Phase 1 target).
pub const DEFAULT_FEAS_TOL: f64 = 1e-7;
/// Ratio-test pivots smaller than this are numerically unusable.
const PIVOT_TOL: f64 = 1e-9;
/// Ratio-test tie window: steps within this of the best are "tied" and
/// broken by pivot quality (largest |w_i|) instead of index order.
const RATIO_TIE_TOL: f64 = 1e-12;
/// A step shorter than this counts as a degenerate pivot for the
/// Bland's-rule switch.
const DEGENERATE_STEP_TOL: f64 = 1e-10;
/// Reduced-cost sign tolerance when validating a reloaded basis. Looser
/// than `DEFAULT_OPT_TOL` because the saved optimum was itself only
/// tolerance-optimal and the basis is refactorized on reload; any residual
/// drift is repaired by the primal clean-up phase after the dual pivots.
const WARM_DUAL_TOL: f64 = 1e-7;

/// Simplex tuning knobs. Defaults suit the HSLB problem sizes.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iters: usize,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Primal feasibility tolerance (bound violations, Phase 1 target).
    pub feas_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub degeneracy_limit: usize,
    /// Pivots between basis refactorizations.
    pub refactor_every: usize,
    /// Event trace (off by default; see `hslb-obs`). When enabled, every
    /// solve emits one `LpSolved` event carrying its pivot count.
    pub trace: Trace,
    /// Basis representation: dense explicit inverse (the oracle) or the
    /// sparse LU + eta-update factorization. `Auto` resolves on the row
    /// count against [`hslb_linalg::SPARSE_CROSSOVER_DIM`].
    pub backend: LinalgBackend,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 50_000,
            opt_tol: DEFAULT_OPT_TOL,
            feas_tol: DEFAULT_FEAS_TOL,
            degeneracy_limit: 200,
            refactor_every: 100,
            trace: Trace::off(),
            backend: LinalgBackend::Auto,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeZero,
}

/// Sparse column: (row, coefficient) pairs.
type Column = Vec<(usize, f64)>;

/// Basis saved at a previous optimum for reuse by [`solve_warm`].
///
/// Opaque to callers; keep one per cut loop (the OA master keeps one per
/// tree) and pass it to every `solve_warm` call. The reuse contract is that
/// successive LPs only *append* rows and *move* variable bounds — existing
/// rows and the cost vector must not change between solves. Both paths
/// through `solve_warm` (dual pivots or cold fallback) refresh the saved
/// basis, so staleness is self-healing.
#[derive(Debug, Clone, Default)]
pub struct WarmBasis {
    /// Status of every structural and slack column at the saved optimum.
    status: Vec<VarStatus>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    num_vars: usize,
    num_rows: usize,
    saved: bool,
}

impl WarmBasis {
    /// An empty basis; the first `solve_warm` call falls through to a cold
    /// solve and fills it in.
    pub fn new() -> Self {
        WarmBasis::default()
    }

    /// Whether the saved basis can seed a solve of `lp` (same columns, row
    /// set grown by appending only).
    fn usable_for(&self, lp: &LinearProgram) -> bool {
        self.saved && self.num_vars == lp.num_vars() && self.num_rows <= lp.num_rows()
    }

    /// Records the basis of an optimal tableau. A degenerate optimum can
    /// leave a Phase-1 artificial basic at zero; such a basis is not
    /// reusable and is dropped.
    fn save_from(&mut self, tab: &Tableau, num_vars: usize) {
        let nm = num_vars + tab.m;
        if tab.basis.iter().any(|&b| b >= nm) {
            self.saved = false;
            return;
        }
        self.status.clear();
        self.status.extend_from_slice(&tab.status[..nm]);
        self.basis.clear();
        self.basis.extend_from_slice(&tab.basis);
        self.num_vars = num_vars;
        self.num_rows = tab.m;
        self.saved = true;
    }
}

/// One product-form update recorded by a sparse-path pivot. The update
/// matrix `E⁻¹` applies to a vector as `v[r] /= pivot; v[i] -= w_i·v[r]`
/// (`i ≠ r`), exactly the elementary row operation the dense path applies
/// to its explicit inverse.
struct Eta {
    r: usize,
    /// Off-pivot rows of the ftran column (`i ≠ r`, structural zeros
    /// dropped).
    w: Vec<(usize, f64)>,
    pivot: f64,
}

/// The basis representation behind the simplex.
///
/// `Dense` is the historical explicit inverse — kept byte-identical so
/// every pinned counter below the sparse crossover is unchanged. `Sparse`
/// holds the basis as `SparseLu` plus the etas appended since the last
/// refactorization (Bartels–Golub-style product form): ftran applies the
/// LU solve then the etas in order, btran applies the transposed etas in
/// reverse then the transposed LU solve.
// One BasisFactor exists per solve (never in a collection), so the
// dense/sparse size gap costs nothing; boxing would add a pointer chase
// to every ftran/btran instead.
#[allow(clippy::large_enum_variant)]
enum BasisFactor {
    Dense(Matrix),
    Sparse {
        lu: Option<SparseLu>,
        etas: Vec<Eta>,
        ws: SparseWorkspace,
    },
}

impl BasisFactor {
    fn new(backend: LinalgBackend, m: usize) -> BasisFactor {
        if backend.use_sparse(m) {
            BasisFactor::Sparse {
                lu: None,
                etas: Vec::new(),
                ws: SparseWorkspace::new(),
            }
        } else {
            BasisFactor::Dense(Matrix::identity(m))
        }
    }
}

struct Tableau {
    /// All columns: structurals, then slacks, then artificials.
    cols: Vec<Column>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    status: Vec<VarStatus>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    /// Basis factorization (dense explicit inverse or sparse LU + etas).
    factor: BasisFactor,
    /// Values of the basic variables, row-aligned with `basis`.
    xb: Vec<f64>,
    /// Right-hand side per row (all rows are equalities after slacks).
    rhs: Vec<f64>,
    /// Whether each column may enter the basis (artificials may not in
    /// Phase 2).
    can_enter: Vec<bool>,
    m: usize,
    /// Basis (re)factorizations performed, both backends.
    factorizations: u64,
    /// Product-form eta updates appended (sparse path only; the dense
    /// path's elementary inverse updates are the same event but have no
    /// factor to update).
    factor_updates: u64,
    /// Cumulative factor nonzeros across sparse refactorizations.
    fill_nnz: u64,
}

impl Tableau {
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lo[j],
            VarStatus::AtUpper => self.hi[j],
            VarStatus::FreeZero => 0.0,
            VarStatus::Basic(r) => self.xb[r],
        }
    }

    /// Current value of any variable.
    fn value(&self, j: usize) -> f64 {
        self.nonbasic_value(j)
    }

    /// y = cBᵀ B⁻¹ for the given cost vector.
    fn duals(&self, costs: &[f64]) -> Vec<f64> {
        let m = self.m;
        match &self.factor {
            BasisFactor::Dense(binv) => {
                let mut y = vec![0.0; m];
                for (r, &bvar) in self.basis.iter().enumerate() {
                    let c = costs[bvar];
                    if !exactly_zero(c) {
                        for (k, yk) in y.iter_mut().enumerate() {
                            *yk += c * binv[(r, k)];
                        }
                    }
                }
                y
            }
            BasisFactor::Sparse { .. } => {
                let mut cb = vec![0.0; m];
                for (r, &bvar) in self.basis.iter().enumerate() {
                    cb[r] = costs[bvar];
                }
                self.btran(cb)
            }
        }
    }

    /// Row `r` of B⁻¹ (ρᵀ = e_rᵀ B⁻¹) — the dual ratio test's pivot row.
    fn row_of_inverse(&self, r: usize) -> Vec<f64> {
        match &self.factor {
            BasisFactor::Dense(binv) => (0..self.m).map(|k| binv[(r, k)]).collect(),
            BasisFactor::Sparse { .. } => {
                let mut e = vec![0.0; self.m];
                e[r] = 1.0;
                self.btran(e)
            }
        }
    }

    /// y = B⁻ᵀ v. Sparse path: transposed etas in reverse order, then the
    /// transposed LU solve. (Dense callers use their historical loops
    /// directly; this fallback arm keeps the method total.)
    fn btran(&self, mut v: Vec<f64>) -> Vec<f64> {
        match &self.factor {
            BasisFactor::Dense(binv) => {
                let mut y = vec![0.0; self.m];
                for (r, vr) in v.iter().enumerate() {
                    if !exactly_zero(*vr) {
                        for (k, yk) in y.iter_mut().enumerate() {
                            *yk += vr * binv[(r, k)];
                        }
                    }
                }
                y
            }
            BasisFactor::Sparse { lu, etas, .. } => {
                for eta in etas.iter().rev() {
                    let mut s = v[eta.r];
                    for &(i, wi) in &eta.w {
                        s -= wi * v[i];
                    }
                    v[eta.r] = s / eta.pivot;
                }
                match lu {
                    Some(f) => f.solve_transposed(&v),
                    None => v,
                }
            }
        }
    }

    /// Reduced cost of column `j` given duals `y`.
    fn reduced_cost(&self, j: usize, costs: &[f64], y: &[f64]) -> f64 {
        let mut d = costs[j];
        for &(row, a) in &self.cols[j] {
            d -= y[row] * a;
        }
        d
    }

    /// w = B⁻¹ A_j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        match &self.factor {
            BasisFactor::Dense(binv) => {
                let m = self.m;
                let mut w = vec![0.0; m];
                for &(row, a) in &self.cols[j] {
                    if !exactly_zero(a) {
                        for (i, wi) in w.iter_mut().enumerate() {
                            *wi += binv[(i, row)] * a;
                        }
                    }
                }
                w
            }
            BasisFactor::Sparse { .. } => {
                let mut v = vec![0.0; self.m];
                for &(row, a) in &self.cols[j] {
                    v[row] += a;
                }
                self.ftran_vec(v)
            }
        }
    }

    /// w = B⁻¹ v for a dense right-hand side: LU solve then the etas in
    /// recording order (sparse path).
    fn ftran_vec(&self, v: Vec<f64>) -> Vec<f64> {
        match &self.factor {
            BasisFactor::Dense(binv) => (0..self.m)
                .map(|i| v.iter().enumerate().map(|(k, &vk)| binv[(i, k)] * vk).sum())
                .collect(),
            BasisFactor::Sparse { lu, etas, .. } => {
                let mut w = match lu {
                    Some(f) => f.solve(&v),
                    None => v,
                };
                for eta in etas {
                    let vr = w[eta.r] / eta.pivot;
                    w[eta.r] = vr;
                    if !exactly_zero(vr) {
                        for &(i, wi) in &eta.w {
                            w[i] -= wi * vr;
                        }
                    }
                }
                w
            }
        }
    }

    /// Applies the basis exchange at row `r` with ftran column `w`: the
    /// elementary row update of the dense explicit inverse, or a recorded
    /// product-form eta on the sparse factorization.
    fn pivot_update(&mut self, r: usize, w: &[f64]) {
        match &mut self.factor {
            BasisFactor::Dense(binv) => {
                let p = w[r];
                for k in 0..self.m {
                    binv[(r, k)] /= p;
                }
                for (i, &f) in w.iter().enumerate() {
                    if i != r && !exactly_zero(f) {
                        for k in 0..self.m {
                            let br = binv[(r, k)];
                            binv[(i, k)] -= f * br;
                        }
                    }
                }
            }
            BasisFactor::Sparse { etas, .. } => {
                let wr: Vec<(usize, f64)> = w
                    .iter()
                    .enumerate()
                    .filter(|&(i, &wi)| i != r && !exactly_zero(wi))
                    .map(|(i, &wi)| (i, wi))
                    .collect();
                etas.push(Eta {
                    r,
                    w: wr,
                    pivot: w[r],
                });
                self.factor_updates += 1;
            }
        }
    }

    /// Rebuilds the basis factorization and `xb` from scratch (numerical
    /// hygiene; also the sparse path's eta compaction point).
    fn refactorize(&mut self) -> Result<(), ()> {
        let m = self.m;
        self.factorizations += 1;
        match &mut self.factor {
            BasisFactor::Dense(binv_slot) => {
                let mut b = Matrix::zeros(m, m);
                for (r, &bvar) in self.basis.iter().enumerate() {
                    for &(row, a) in &self.cols[bvar] {
                        b[(row, r)] += a;
                    }
                }
                let lu = Lu::new(&b).map_err(|_| ())?;
                // binv columns: solve B z = e_k.
                let mut binv = Matrix::zeros(m, m);
                let mut e = vec![0.0; m];
                for k in 0..m {
                    e[k] = 1.0;
                    let z = lu.solve(&e);
                    e[k] = 0.0;
                    for i in 0..m {
                        binv[(i, k)] = z[i];
                    }
                }
                *binv_slot = binv;
            }
            BasisFactor::Sparse { lu, etas, ws } => {
                let bcols: Vec<Column> = self
                    .basis
                    .iter()
                    .map(|&bvar| self.cols[bvar].clone())
                    .collect();
                let b = CscMatrix::from_columns(m, &bcols).map_err(|_| ())?;
                let sym = LuSymbolic::analyze(&b).map_err(|_| ())?;
                let f = SparseLu::factorize(&b, &sym, ws).map_err(|_| ())?;
                self.fill_nnz += f.fill_nnz() as u64;
                etas.clear();
                *lu = Some(f);
            }
        }
        self.recompute_xb();
        Ok(())
    }

    /// xB = B⁻¹ (b - N x_N).
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut resid = self.rhs.clone();
        for j in 0..self.cols.len() {
            if matches!(self.status[j], VarStatus::Basic(_)) {
                continue;
            }
            let v = self.nonbasic_value(j);
            if !exactly_zero(v) {
                for &(row, a) in &self.cols[j] {
                    resid[row] -= a * v;
                }
            }
        }
        let xb: Vec<f64> = match &self.factor {
            BasisFactor::Dense(binv) => (0..m)
                .map(|i| {
                    resid
                        .iter()
                        .enumerate()
                        .map(|(k, &rk)| binv[(i, k)] * rk)
                        .sum()
                })
                .collect(),
            BasisFactor::Sparse { .. } => self.ftran_vec(resid),
        };
        self.xb = xb;
    }
}

/// Outcome of one phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Solves the LP with default options.
pub fn solve(lp: &LinearProgram) -> LpSolution {
    solve_with(lp, &SimplexOptions::default())
}

/// Solves the LP with explicit options.
pub fn solve_with(lp: &LinearProgram, opts: &SimplexOptions) -> LpSolution {
    let sol = solve_inner(lp, opts, None);
    opts.trace.emit(|| Event::LpSolved {
        pivots: sol.iterations as u64,
    });
    sol
}

/// Solves the LP, reusing (and refreshing) the basis in `warm`.
///
/// When `warm` holds a basis compatible with `lp` (see [`WarmBasis`]), the
/// solve restarts from it with dual-simplex pivots; otherwise — and on any
/// numerical trouble or infeasibility verdict along the warm path — it
/// falls back to the cold two-phase solve, so results never depend on the
/// saved basis being good. `dual_pivots`/`warm_used` in the solution report
/// what happened.
pub fn solve_warm(lp: &LinearProgram, opts: &SimplexOptions, warm: &mut WarmBasis) -> LpSolution {
    let sol = if warm.usable_for(lp) {
        // An infeasibility verdict from the dual path is re-derived cold so
        // that Infeasible results always come from the same code path as
        // cold solves.
        match try_dual_warm(lp, opts, warm) {
            Some(sol) => sol,
            None => solve_inner(lp, opts, Some(warm)),
        }
    } else {
        solve_inner(lp, opts, Some(warm))
    };
    opts.trace.emit(|| Event::LpSolved {
        pivots: sol.iterations as u64,
    });
    sol
}

/// Structural + slack columns, bounds, and row right-hand sides — the part
/// of the tableau shared by cold and warm starts (artificials are cold-only).
struct TableauBase {
    cols: Vec<Column>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    rhs: Vec<f64>,
}

fn build_base(lp: &LinearProgram) -> TableauBase {
    let m = lp.num_rows();
    let n = lp.num_vars();
    // Structural columns (transpose the row-wise storage, summing dups).
    let mut cols: Vec<Column> = vec![Vec::new(); n];
    let mut rhs = vec![0.0; m];
    for (r, row) in lp.rows().iter().enumerate() {
        rhs[r] = row.rhs;
        for &(v, c) in &row.coeffs {
            if let Some(entry) = cols[v.0].iter_mut().find(|(rr, _)| *rr == r) {
                entry.1 += c;
            } else if !exactly_zero(c) {
                cols[v.0].push((r, c));
            }
        }
    }
    let mut lo = lp.lowers().to_vec();
    let mut hi = lp.uppers().to_vec();

    // Slack columns.
    for (r, row) in lp.rows().iter().enumerate() {
        cols.push(vec![(r, 1.0)]);
        match row.sense {
            RowSense::Le => {
                lo.push(0.0);
                hi.push(f64::INFINITY);
            }
            RowSense::Ge => {
                lo.push(f64::NEG_INFINITY);
                hi.push(0.0);
            }
            RowSense::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
        }
    }
    TableauBase { cols, lo, hi, rhs }
}

/// The actual two-phase solve; `solve_with` wraps it so that every return
/// path emits exactly one trace event. When `save` is given, the optimal
/// basis is recorded into it for later `solve_warm` calls.
fn solve_inner(
    lp: &LinearProgram,
    opts: &SimplexOptions,
    save: Option<&mut WarmBasis>,
) -> LpSolution {
    let m = lp.num_rows();
    let n = lp.num_vars();

    let TableauBase {
        mut cols,
        mut lo,
        mut hi,
        rhs,
    } = build_base(lp);
    let mut can_enter = vec![true; n + m];
    let slack_base = n;

    // Initial nonbasic placement for structurals.
    let mut status: Vec<VarStatus> = (0..n).map(|j| initial_status(lo[j], hi[j])).collect();

    // Row residuals with structurals at their parked values.
    let mut resid = rhs.clone();
    for j in 0..n {
        let v = match status[j] {
            VarStatus::AtLower => lo[j],
            VarStatus::AtUpper => hi[j],
            _ => 0.0,
        };
        if !exactly_zero(v) {
            for &(row, a) in &cols[j] {
                resid[row] -= a * v;
            }
        }
    }

    // Slack placement: basic when the residual fits its bounds, otherwise
    // parked at the nearest bound with an artificial absorbing the deficit.
    // Slack statuses are pushed first (they occupy columns n..n+m); the
    // artificial statuses are appended afterwards so `status[j]` stays
    // aligned with column `j`.
    let mut basis = Vec::with_capacity(m);
    let mut xb = Vec::with_capacity(m);
    let mut artificials = Vec::new();
    let mut art_status = Vec::new();
    for (r, &s) in resid.iter().enumerate() {
        let sj = slack_base + r;
        if s >= lo[sj] - opts.feas_tol && s <= hi[sj] + opts.feas_tol {
            status.push(VarStatus::Basic(r));
            basis.push(sj);
            xb.push(s);
        } else {
            let parked = if s < lo[sj] { lo[sj] } else { hi[sj] };
            status.push(if parked == lo[sj] {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            });
            let deficit = s - parked;
            // Artificial column sign(deficit)·e_r, basic at |deficit|.
            let aj = cols.len();
            cols.push(vec![(r, deficit.signum())]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
            can_enter.push(true);
            art_status.push(VarStatus::Basic(r));
            basis.push(aj);
            xb.push(deficit.abs());
            artificials.push(aj);
        }
    }
    status.extend(art_status);

    let mut tab = Tableau {
        cols,
        lo,
        hi,
        status,
        basis,
        factor: BasisFactor::new(opts.backend, m),
        factorizations: 0,
        factor_updates: 0,
        fill_nnz: 0,
        xb,
        rhs,
        can_enter,
        m,
    };
    // The slack part of the initial basis is the identity but artificial
    // columns may carry a -1 coefficient; build the true inverse up front.
    if tab.refactorize().is_err() {
        return LpSolution {
            status: LpStatus::IterationLimit,
            x: Vec::new(),
            objective: f64::NAN,
            duals: Vec::new(),
            iterations: 0,
            dual_pivots: 0,
            warm_used: false,
            factorizations: tab.factorizations,
            factor_updates: tab.factor_updates,
            fill_nnz: tab.fill_nnz,
        };
    }

    let mut iterations = 0;

    // ---- Phase 1 -------------------------------------------------------
    if !artificials.is_empty() {
        let mut costs1 = vec![0.0; tab.cols.len()];
        for &a in &artificials {
            costs1[a] = 1.0;
        }
        match run_phase(&mut tab, &costs1, opts, &mut iterations) {
            PhaseEnd::Optimal => {}
            // Phase 1 objective is bounded below by 0, so Unbounded cannot
            // legitimately happen; treat as numerical failure.
            PhaseEnd::Unbounded | PhaseEnd::IterationLimit => {
                return LpSolution {
                    status: LpStatus::IterationLimit,
                    x: Vec::new(),
                    objective: f64::NAN,
                    duals: Vec::new(),
                    iterations,
                    dual_pivots: 0,
                    warm_used: false,
                    factorizations: tab.factorizations,
                    factor_updates: tab.factor_updates,
                    fill_nnz: tab.fill_nnz,
                };
            }
        }
        let infeasibility: f64 = artificials.iter().map(|&a| tab.value(a).max(0.0)).sum();
        if infeasibility > opts.feas_tol * 10.0 {
            let mut sol = LpSolution::infeasible(iterations);
            sol.factorizations = tab.factorizations;
            sol.factor_updates = tab.factor_updates;
            sol.fill_nnz = tab.fill_nnz;
            return sol;
        }
        // Freeze artificials at zero for Phase 2.
        for &a in &artificials {
            tab.hi[a] = 0.0;
            tab.can_enter[a] = false;
            if let VarStatus::Basic(r) = tab.status[a] {
                tab.xb[r] = 0.0; // clean tiny residue
            } else {
                tab.status[a] = VarStatus::AtLower;
            }
        }
    }

    // ---- Phase 2 -------------------------------------------------------
    let mut costs2 = vec![0.0; tab.cols.len()];
    costs2[..n].copy_from_slice(lp.costs());
    let end = run_phase(&mut tab, &costs2, opts, &mut iterations);
    match end {
        PhaseEnd::Optimal => {
            let x: Vec<f64> = (0..n).map(|j| tab.value(j)).collect();
            let duals = tab.duals(&costs2);
            let objective = lp.objective_value(&x);
            if let Some(warm) = save {
                warm.save_from(&tab, n);
            }
            LpSolution {
                status: LpStatus::Optimal,
                x,
                objective,
                duals,
                iterations,
                dual_pivots: 0,
                warm_used: false,
                factorizations: tab.factorizations,
                factor_updates: tab.factor_updates,
                fill_nnz: tab.fill_nnz,
            }
        }
        PhaseEnd::Unbounded => {
            let mut sol = LpSolution::unbounded(iterations);
            sol.factorizations = tab.factorizations;
            sol.factor_updates = tab.factor_updates;
            sol.fill_nnz = tab.fill_nnz;
            sol
        }
        PhaseEnd::IterationLimit => LpSolution {
            status: LpStatus::IterationLimit,
            x: Vec::new(),
            objective: f64::NAN,
            duals: Vec::new(),
            iterations,
            dual_pivots: 0,
            warm_used: false,
            factorizations: tab.factorizations,
            factor_updates: tab.factor_updates,
            fill_nnz: tab.fill_nnz,
        },
    }
}

/// Attempts the dual-simplex restart from `warm`. Returns `None` whenever
/// the caller should fall back to a cold solve: singular reload, stale dual
/// feasibility, pivot breakdown, iteration cap, or a primal-infeasibility
/// verdict (re-derived cold so infeasibility always comes from one path).
fn try_dual_warm(
    lp: &LinearProgram,
    opts: &SimplexOptions,
    warm: &mut WarmBasis,
) -> Option<LpSolution> {
    let m = lp.num_rows();
    let n = lp.num_vars();
    let nm = n + m;
    let TableauBase { cols, lo, hi, rhs } = build_base(lp);

    // Saved statuses cover structurals and the old rows' slacks; each
    // appended cut row's slack starts basic in its own row (an OA cut is
    // violated by the incumbent vertex, so that slack is out of bounds and
    // the dual pivots drive it out again).
    let mut status = warm.status.clone();
    let mut basis = warm.basis.clone();
    for r in warm.num_rows..m {
        status.push(VarStatus::Basic(r));
        basis.push(n + r);
    }
    // Bound moves can change which bounds exist; re-park nonbasic variables
    // whose saved bound went infinite.
    for j in 0..nm {
        match status[j] {
            VarStatus::Basic(_) => {}
            VarStatus::AtLower if lo[j].is_finite() => {}
            VarStatus::AtUpper if hi[j].is_finite() => {}
            _ => status[j] = initial_status(lo[j], hi[j]),
        }
    }
    for (r, &b) in basis.iter().enumerate() {
        if status[b] != VarStatus::Basic(r) {
            return None;
        }
    }

    let mut tab = Tableau {
        cols,
        lo,
        hi,
        status,
        basis,
        factor: BasisFactor::new(opts.backend, m),
        factorizations: 0,
        factor_updates: 0,
        fill_nnz: 0,
        xb: vec![0.0; m],
        rhs,
        can_enter: vec![true; nm],
        m,
    };
    tab.refactorize().ok()?;

    let mut costs = vec![0.0; nm];
    costs[..n].copy_from_slice(lp.costs());

    // The warm path is only sound from a dual-feasible basis; verify the
    // reduced-cost signs survived the bound moves and the reload.
    let y = tab.duals(&costs);
    for j in 0..nm {
        if tab.lo[j] == tab.hi[j] {
            continue; // fixed: never enters, any sign is fine
        }
        let ok = match tab.status[j] {
            VarStatus::Basic(_) => true,
            VarStatus::AtLower => tab.reduced_cost(j, &costs, &y) >= -WARM_DUAL_TOL,
            VarStatus::AtUpper => tab.reduced_cost(j, &costs, &y) <= WARM_DUAL_TOL,
            VarStatus::FreeZero => tab.reduced_cost(j, &costs, &y).abs() <= WARM_DUAL_TOL,
        };
        if !ok {
            return None;
        }
    }

    let mut iterations = 0usize;
    let mut dual_pivots = 0usize;
    let mut since_refactor = 0usize;

    loop {
        if iterations >= opts.max_iters {
            return None;
        }
        if since_refactor >= opts.refactor_every {
            tab.refactorize().ok()?;
            since_refactor = 0;
        }

        // ---- Leaving variable: worst bound violation among the basics ----
        let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, below)
        for r in 0..tab.m {
            let bvar = tab.basis[r];
            let below = tab.lo[bvar] - tab.xb[r];
            let above = tab.xb[r] - tab.hi[bvar];
            if below > opts.feas_tol && leave.is_none_or(|(_, v, _)| below > v) {
                leave = Some((r, below, true));
            }
            if above > opts.feas_tol && leave.is_none_or(|(_, v, _)| above > v) {
                leave = Some((r, above, false));
            }
        }
        let Some((r, _, below)) = leave else {
            break; // primal feasible
        };

        // ---- Entering variable: dual ratio test on pivot row r ----
        // xb[r] changes by -alpha_rj * dir_j * t when nonbasic j moves by t
        // in direction dir_j; it must move toward the violated bound, and
        // among the eligible columns the smallest |d_j|/|alpha_rj| keeps
        // every reduced cost on its dual-feasible side.
        let y = tab.duals(&costs);
        let rho = tab.row_of_inverse(r);
        let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
        for j in 0..nm {
            if matches!(tab.status[j], VarStatus::Basic(_)) || tab.lo[j] == tab.hi[j] {
                continue;
            }
            let mut alpha = 0.0;
            for &(row, a) in &tab.cols[j] {
                alpha += rho[row] * a;
            }
            if alpha.abs() <= PIVOT_TOL {
                continue;
            }
            let eligible = match tab.status[j] {
                // AtLower can only increase (dir +1): xb[r] moves by -alpha·t.
                VarStatus::AtLower => (alpha < 0.0) == below,
                // AtUpper can only decrease (dir -1): xb[r] moves by +alpha·t.
                VarStatus::AtUpper => (alpha > 0.0) == below,
                VarStatus::FreeZero => true,
                // Statically dead: basic columns are skipped at the top of
                // the loop.
                VarStatus::Basic(_) => false,
            };
            if !eligible {
                continue;
            }
            let ratio = tab.reduced_cost(j, &costs, &y).abs() / alpha.abs();
            let better = match &enter {
                None => true,
                Some((_, best, best_alpha)) => {
                    ratio < best - RATIO_TIE_TOL
                        || (ratio < best + RATIO_TIE_TOL && alpha.abs() > *best_alpha)
                }
            };
            if better {
                enter = Some((j, ratio, alpha.abs()));
            }
        }
        // No column can repair row r: the primal is infeasible. Hand back
        // to the cold path to certify it.
        let (j, _, _) = enter?;

        // ---- Pivot: drive xb[r] exactly onto its violated bound ----
        let w = tab.ftran(j);
        if w[r].abs() <= PIVOT_TOL {
            return None; // alpha/ftran disagreement: numerical trouble
        }
        let lvar = tab.basis[r];
        let target = if below { tab.lo[lvar] } else { tab.hi[lvar] };
        let delta = (tab.xb[r] - target) / w[r];
        let entering_new = tab.nonbasic_value(j) + delta;
        for (xbi, &wi) in tab.xb.iter_mut().zip(&w) {
            *xbi -= delta * wi;
        }
        tab.status[lvar] = if below {
            VarStatus::AtLower
        } else {
            VarStatus::AtUpper
        };
        tab.basis[r] = j;
        tab.status[j] = VarStatus::Basic(r);
        tab.xb[r] = entering_new;

        // Elementary update of the factorization: pivot on w[r].
        tab.pivot_update(r, &w);

        iterations += 1;
        dual_pivots += 1;
        since_refactor += 1;
    }

    // Primal feasible. A primal clean-up phase mops up any reduced-cost
    // drift the dual tolerances let through (usually zero pivots).
    match run_phase(&mut tab, &costs, opts, &mut iterations) {
        PhaseEnd::Optimal => {
            let x: Vec<f64> = (0..n).map(|j| tab.value(j)).collect();
            let duals = tab.duals(&costs);
            let objective = lp.objective_value(&x);
            warm.save_from(&tab, n);
            Some(LpSolution {
                status: LpStatus::Optimal,
                x,
                objective,
                duals,
                iterations,
                dual_pivots,
                warm_used: true,
                factorizations: tab.factorizations,
                factor_updates: tab.factor_updates,
                fill_nnz: tab.fill_nnz,
            })
        }
        PhaseEnd::Unbounded => {
            let mut sol = LpSolution::unbounded(iterations);
            sol.dual_pivots = dual_pivots;
            sol.warm_used = true;
            sol.factorizations = tab.factorizations;
            sol.factor_updates = tab.factor_updates;
            sol.fill_nnz = tab.fill_nnz;
            Some(sol)
        }
        PhaseEnd::IterationLimit => None,
    }
}

fn initial_status(lo: f64, hi: f64) -> VarStatus {
    if lo.is_finite() {
        VarStatus::AtLower
    } else if hi.is_finite() {
        VarStatus::AtUpper
    } else {
        VarStatus::FreeZero
    }
}

/// Runs primal simplex until optimality/unboundedness for the given costs.
fn run_phase(
    tab: &mut Tableau,
    costs: &[f64],
    opts: &SimplexOptions,
    iterations: &mut usize,
) -> PhaseEnd {
    let mut degenerate_run = 0usize;
    let mut bland = false;
    let mut since_refactor = 0usize;

    loop {
        if *iterations >= opts.max_iters {
            return PhaseEnd::IterationLimit;
        }
        if since_refactor >= opts.refactor_every {
            // A singular refactorization here would indicate corruption of
            // the basis bookkeeping; keep going with the updated inverse.
            let _ = tab.refactorize();
            since_refactor = 0;
        }

        let y = tab.duals(costs);

        // ---- Pricing ----
        let mut enter: Option<(usize, f64, f64)> = None; // (var, |d|, dir)
        for j in 0..tab.cols.len() {
            if !tab.can_enter[j] {
                continue;
            }
            let dir = match tab.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::AtLower => 1.0,
                VarStatus::AtUpper => -1.0,
                VarStatus::FreeZero => 0.0, // decided below
            };
            // Fixed variables (lo == hi) can never improve anything.
            if tab.lo[j] == tab.hi[j] {
                continue;
            }
            let d = tab.reduced_cost(j, costs, &y);
            let (eligible, dir) = if exactly_zero(dir) {
                (d.abs() > opts.opt_tol, if d > 0.0 { -1.0 } else { 1.0 })
            } else if dir > 0.0 {
                (d < -opts.opt_tol, 1.0)
            } else {
                (d > opts.opt_tol, -1.0)
            };
            if !eligible {
                continue;
            }
            let score = d.abs();
            match (&enter, bland) {
                (_, true) => {
                    // Bland: first eligible (lowest index) wins.
                    enter = Some((j, score, dir));
                    break;
                }
                (None, _) => enter = Some((j, score, dir)),
                (Some((_, best, _)), _) if score > *best => enter = Some((j, score, dir)),
                _ => {}
            }
        }
        let Some((j, _, dir)) = enter else {
            return PhaseEnd::Optimal;
        };

        // ---- Ratio test ----
        let w = tab.ftran(j);
        let own_range = tab.hi[j] - tab.lo[j]; // may be inf
        let mut t_max = if own_range.is_finite() {
            own_range
        } else {
            f64::INFINITY
        };
        let mut leaving: Option<(usize, bool)> = None; // (row, hits_lower)
        let piv_tol = PIVOT_TOL;
        for i in 0..tab.m {
            let coeff = dir * w[i];
            let bvar = tab.basis[i];
            if coeff > piv_tol {
                let lb = tab.lo[bvar];
                if lb.is_finite() {
                    let t = (tab.xb[i] - lb) / coeff;
                    if t < t_max - RATIO_TIE_TOL
                        || (t < t_max + RATIO_TIE_TOL && better_pivot(&leaving, i, &w, tab, bland))
                    {
                        t_max = t.max(0.0);
                        leaving = Some((i, true));
                    }
                }
            } else if coeff < -piv_tol {
                let ub = tab.hi[bvar];
                if ub.is_finite() {
                    let t = (ub - tab.xb[i]) / (-coeff);
                    if t < t_max - RATIO_TIE_TOL
                        || (t < t_max + RATIO_TIE_TOL && better_pivot(&leaving, i, &w, tab, bland))
                    {
                        t_max = t.max(0.0);
                        leaving = Some((i, false));
                    }
                }
            }
        }

        if t_max.is_infinite() {
            return PhaseEnd::Unbounded;
        }

        *iterations += 1;
        since_refactor += 1;
        if t_max < DEGENERATE_STEP_TOL {
            degenerate_run += 1;
            if degenerate_run >= opts.degeneracy_limit {
                bland = true;
            }
        } else {
            degenerate_run = 0;
        }

        // ---- Update ----
        let t = t_max;
        match leaving {
            None => {
                // Bound flip: the entering variable traverses its whole range.
                for (xbi, &wi) in tab.xb.iter_mut().zip(&w) {
                    *xbi -= t * dir * wi;
                }
                tab.status[j] = match tab.status[j] {
                    VarStatus::AtLower => VarStatus::AtUpper,
                    VarStatus::AtUpper => VarStatus::AtLower,
                    // A free variable can only flip if both bounds were
                    // finite, which contradicts FreeZero; keep it sane.
                    other => other,
                };
            }
            Some((r, hits_lower)) => {
                let entering_start = tab.nonbasic_value(j);
                for (xbi, &wi) in tab.xb.iter_mut().zip(&w) {
                    *xbi -= t * dir * wi;
                }
                let lvar = tab.basis[r];
                tab.status[lvar] = if hits_lower {
                    VarStatus::AtLower
                } else {
                    VarStatus::AtUpper
                };
                // Snap exactly onto the bound to stop drift.
                tab.basis[r] = j;
                tab.status[j] = VarStatus::Basic(r);
                tab.xb[r] = entering_start + dir * t;

                // Elementary update of the factorization: pivot on w[r].
                debug_assert!(w[r].abs() > RATIO_TIE_TOL, "pivot too small");
                tab.pivot_update(r, &w);
            }
        }
    }
}

/// Tie-break for the ratio test: prefer the row with the larger pivot
/// magnitude (stability), or the lowest basis variable index under Bland.
fn better_pivot(
    current: &Option<(usize, bool)>,
    candidate_row: usize,
    w: &[f64],
    tab: &Tableau,
    bland: bool,
) -> bool {
    match current {
        None => true,
        Some((row, _)) => {
            if bland {
                tab.basis[candidate_row] < tab.basis[*row]
            } else {
                w[candidate_row].abs() > w[*row].abs()
            }
        }
    }
}
