//! LP problem builder.

/// Index of a variable in a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Sense of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSense {
    /// `a·x <= b`
    Le,
    /// `a·x >= b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A constraint row stored sparsely.
#[derive(Debug, Clone)]
pub struct Row {
    /// `(variable, coefficient)` pairs; duplicate variables are summed at
    /// solve time.
    pub coeffs: Vec<(VarId, f64)>,
    pub sense: RowSense,
    pub rhs: f64,
}

/// A linear program `min cᵀx` over bounded variables and constraint rows.
///
/// Build once, then [`crate::solve`] it; rows may be appended afterwards
/// (outer-approximation cuts) and the program re-solved.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    costs: Vec<f64>,
    lowers: Vec<f64>,
    uppers: Vec<f64>,
    rows: Vec<Row>,
    names: Vec<String>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with objective coefficient `cost` and bounds
    /// `lo <= x <= hi` (use `f64::NEG_INFINITY` / `f64::INFINITY` for free
    /// directions).
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn add_var(&mut self, cost: f64, lo: f64, hi: f64) -> VarId {
        assert!(!lo.is_nan() && !hi.is_nan(), "bounds must not be NaN");
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        let id = VarId(self.costs.len());
        self.costs.push(cost);
        self.lowers.push(lo);
        self.uppers.push(hi);
        self.names.push(format!("x{}", id.0));
        id
    }

    /// Adds a named variable (names appear in debug dumps only).
    pub fn add_named_var(&mut self, name: &str, cost: f64, lo: f64, hi: f64) -> VarId {
        let id = self.add_var(cost, lo, hi);
        // lint:allow(slice-index): `id` was issued by `add_var` just above.
        self.names[id.0] = name.to_string();
        id
    }

    /// Adds a constraint row; returns its index.
    ///
    /// # Panics
    /// Panics if any referenced variable does not exist or `rhs` is NaN.
    pub fn add_row(&mut self, coeffs: Vec<(VarId, f64)>, sense: RowSense, rhs: f64) -> usize {
        assert!(!rhs.is_nan(), "rhs must not be NaN");
        for (v, c) in &coeffs {
            assert!(
                v.0 < self.costs.len(),
                "row references unknown variable {v:?}"
            );
            assert!(c.is_finite(), "coefficients must be finite");
        }
        self.rows.push(Row { coeffs, sense, rhs });
        self.rows.len() - 1
    }

    /// Tightens (intersects) the bounds of an existing variable.
    ///
    /// Used by branch-and-bound to create child problems without rebuilding.
    ///
    /// # Panics
    /// Panics if the variable does not exist. An empty intersection is
    /// allowed (the LP becomes infeasible, which the solver reports).
    pub fn restrict_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        assert!(var.0 < self.costs.len());
        // lint:allow(slice-index): in-bounds by the assert above.
        let (l, u) = (&mut self.lowers[var.0], &mut self.uppers[var.0]);
        *l = l.max(lo);
        *u = u.min(hi);
    }

    /// Overwrites the bounds of a variable (no intersection) — used by
    /// branch-and-bound to install and restore node boxes.
    ///
    /// # Panics
    /// Panics if the variable does not exist or `lo > hi`.
    pub fn set_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        assert!(var.0 < self.costs.len());
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        // lint:allow(slice-index): in-bounds by the assert above.
        let (l, u) = (&mut self.lowers[var.0], &mut self.uppers[var.0]);
        *l = lo;
        *u = hi;
    }

    /// Overwrites the objective coefficient of a variable.
    pub fn set_cost(&mut self, var: VarId, cost: f64) {
        assert!(var.0 < self.costs.len());
        // lint:allow(slice-index): in-bounds by the assert above.
        self.costs[var.0] = cost;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Lower bounds.
    pub fn lowers(&self) -> &[f64] {
        &self.lowers
    }

    /// Upper bounds.
    pub fn uppers(&self) -> &[f64] {
        &self.uppers
    }

    /// Constraint rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Variable name (for diagnostics).
    ///
    /// # Panics
    /// Panics if the variable does not exist.
    pub fn name(&self, var: VarId) -> &str {
        // lint:allow(slice-index): a dangling VarId panics by documented contract.
        &self.names[var.0]
    }

    /// Evaluates a row's left-hand side at a point.
    ///
    /// # Panics
    /// Panics if the row does not exist or `x` is shorter than the
    /// variables the row references.
    pub fn row_activity(&self, row: usize, x: &[f64]) -> f64 {
        // lint:allow(slice-index): rows only reference VarIds validated by add_row.
        self.rows[row].coeffs.iter().map(|(v, c)| c * x[v.0]).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for ((&xi, &lo), &hi) in x.iter().zip(&self.lowers).zip(&self.uppers) {
            if xi < lo - tol || xi > hi + tol {
                return false;
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            let act = self.row_activity(r, x);
            let ok = match row.sense {
                RowSense::Le => act <= row.rhs + tol,
                RowSense::Ge => act >= row.rhs - tol,
                RowSense::Eq => (act - row.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Objective value at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.num_vars());
        self.costs.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dimensions() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, 10.0);
        let y = lp.add_named_var("y", -1.0, 0.0, f64::INFINITY);
        lp.add_row(vec![(x, 1.0), (y, 2.0)], RowSense::Le, 4.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_rows(), 1);
        assert_eq!(lp.name(y), "y");
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn rejects_crossed_bounds() {
        let mut lp = LinearProgram::new();
        lp.add_var(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_dangling_reference() {
        let mut lp = LinearProgram::new();
        lp.add_row(vec![(VarId(3), 1.0)], RowSense::Eq, 0.0);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, 5.0);
        lp.add_row(vec![(x, 2.0)], RowSense::Le, 6.0);
        assert!(lp.is_feasible(&[3.0], 1e-9));
        assert!(!lp.is_feasible(&[3.1], 1e-9));
        assert!(!lp.is_feasible(&[-0.1], 1e-9));
        assert!(!lp.is_feasible(&[], 1e-9));
    }

    #[test]
    fn restrict_bounds_intersects() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 0.0, 10.0);
        lp.restrict_bounds(x, 2.0, 20.0);
        assert_eq!(lp.lowers()[0], 2.0);
        assert_eq!(lp.uppers()[0], 10.0);
    }

    #[test]
    fn objective_and_activity() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0, 0.0, 1.0);
        let y = lp.add_var(-2.0, 0.0, 1.0);
        let r = lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Eq, 1.0);
        assert!((lp.objective_value(&[1.0, 0.5]) - 2.0).abs() < 1e-12);
        assert!((lp.row_activity(r, &[1.0, 0.5]) - 1.5).abs() < 1e-12);
    }
}
