//! Linear programming substrate for the MINLP stack (the "CLP" of this
//! reproduction).
//!
//! MINOTAUR's LP/NLP-based branch-and-bound (the solver the HSLB papers use)
//! drives an LP solver: it solves an LP relaxation at every branch-and-bound
//! node and appends outer-approximation cut rows whenever an integer-feasible
//! point violates a nonlinear constraint. This crate provides exactly that
//! interface:
//!
//! * [`LinearProgram`] — a builder for `min cᵀx` subject to row constraints
//!   (`<=`, `>=`, `=`) and per-variable bounds (finite or infinite), with
//!   incremental row addition for cuts.
//! * [`solve`] — a bounded-variable two-phase primal simplex (artificial
//!   Phase 1, Dantzig pricing with a Bland anti-cycling fallback, explicit
//!   basis inverse — the problems here have few rows and possibly many
//!   columns, which this layout suits).
//! * [`LpSolution`] / [`LpStatus`] — primal values, objective, duals, and
//!   infeasible/unbounded outcomes.
//!
//! The solver is deliberately dense and simple: HSLB LPs have at most a few
//! dozen rows (model constraints plus OA cuts) and — in the binary-encoded
//! ablation of §III-E — a few thousand columns.

//! # Example
//!
//! ```
//! use hslb_lp::{solve, LinearProgram, LpStatus, RowSense};
//!
//! // max x + y  s.t.  x + 2y <= 8, 3x + y <= 9  (as minimization)
//! let mut lp = LinearProgram::new();
//! let x = lp.add_var(-1.0, 0.0, f64::INFINITY);
//! let y = lp.add_var(-1.0, 0.0, f64::INFINITY);
//! lp.add_row(vec![(x, 1.0), (y, 2.0)], RowSense::Le, 8.0);
//! lp.add_row(vec![(x, 3.0), (y, 1.0)], RowSense::Le, 9.0);
//! let sol = solve(&lp);
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.x[0] - 2.0).abs() < 1e-8 && (sol.x[1] - 3.0).abs() < 1e-8);
//! ```

pub mod model;
pub mod simplex;
pub mod solution;

pub use model::{LinearProgram, RowSense, VarId};
pub use simplex::{solve, solve_warm, solve_with, SimplexOptions, WarmBasis};
pub use solution::{LpSolution, LpStatus};
