//! Duality and complementary-slackness checks on the simplex solver.

use hslb_lp::{solve, LinearProgram, LpStatus, RowSense};
use proptest::prelude::*;

/// Builds a random feasible-by-construction LP in the canonical form
/// `min cᵀx, A x >= b, x >= 0` (every row passes through a known point).
fn canonical_lp() -> impl Strategy<Value = LinearProgram> {
    let dims = (2usize..4, 1usize..4);
    dims.prop_flat_map(|(n, m)| {
        let xstar = proptest::collection::vec(0.5..4.0f64, n);
        let costs = proptest::collection::vec(0.1..3.0f64, n); // nonneg costs: bounded
        let rows = proptest::collection::vec(
            proptest::collection::vec(0.0..2.0f64, n),
            m,
        );
        (xstar, costs, rows).prop_map(|(xstar, costs, rows)| {
            let mut lp = LinearProgram::new();
            let vars: Vec<_> =
                costs.iter().map(|&c| lp.add_var(c, 0.0, f64::INFINITY)).collect();
            for row in &rows {
                let act: f64 = row.iter().zip(&xstar).map(|(a, x)| a * x).sum();
                lp.add_row(
                    vars.iter().zip(row).map(|(&v, &a)| (v, a)).collect(),
                    RowSense::Ge,
                    act * 0.8, // strictly satisfied by x*
                );
            }
            lp
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Strong duality: at the optimum, bᵀy == cᵀx (for >= rows with x >= 0,
    /// the simplex multipliers are the dual variables).
    #[test]
    fn strong_duality_holds(lp in canonical_lp()) {
        let sol = solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        let dual_obj: f64 = lp
            .rows()
            .iter()
            .zip(&sol.duals)
            .map(|(row, y)| row.rhs * y)
            .sum();
        prop_assert!(
            (dual_obj - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
            "dual {dual_obj} vs primal {}", sol.objective
        );
    }

    /// Complementary slackness: a row with positive slack carries a zero
    /// multiplier (and vice versa for variables, via reduced costs >= 0).
    #[test]
    fn complementary_slackness_holds(lp in canonical_lp()) {
        let sol = solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        for (r, row) in lp.rows().iter().enumerate() {
            let activity = lp.row_activity(r, &sol.x);
            let slack = activity - row.rhs; // >= 0 for Ge rows
            let y = sol.duals[r];
            prop_assert!(
                slack.abs() < 1e-6 || y.abs() < 1e-6,
                "row {r}: slack {slack} and dual {y} both nonzero"
            );
        }
    }
}
