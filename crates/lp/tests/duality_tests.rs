//! Duality and complementary-slackness checks on the simplex solver.

use hslb_lp::{solve, LinearProgram, LpStatus, RowSense};
use hslb_rng::Rng;

/// Builds a random feasible-by-construction LP in the canonical form
/// `min cᵀx, A x >= b, x >= 0` (every row passes through a known point).
fn canonical_lp(rng: &mut Rng) -> LinearProgram {
    let n = rng.usize_range(2, 3);
    let m = rng.usize_range(1, 3);
    let xstar = rng.vec_f64(n, 0.5, 4.0);
    let mut lp = LinearProgram::new();
    let vars: Vec<_> = (0..n)
        .map(|_| lp.add_var(rng.f64_range(0.1, 3.0), 0.0, f64::INFINITY)) // nonneg costs: bounded
        .collect();
    for _ in 0..m {
        let row = rng.vec_f64(n, 0.0, 2.0);
        let act: f64 = row.iter().zip(&xstar).map(|(a, x)| a * x).sum();
        lp.add_row(
            vars.iter().zip(&row).map(|(&v, &a)| (v, a)).collect(),
            RowSense::Ge,
            act * 0.8, // strictly satisfied by x*
        );
    }
    lp
}

/// Strong duality: at the optimum, bᵀy == cᵀx (for >= rows with x >= 0,
/// the simplex multipliers are the dual variables).
#[test]
fn strong_duality_holds() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x3b);
    for case in 0..150 {
        let lp = canonical_lp(&mut rng);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal, "case {case}");
        let dual_obj: f64 = lp
            .rows()
            .iter()
            .zip(&sol.duals)
            .map(|(row, y)| row.rhs * y)
            .sum();
        assert!(
            (dual_obj - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
            "case {case}: dual {dual_obj} vs primal {}",
            sol.objective
        );
    }
}

/// Complementary slackness: a row with positive slack carries a zero
/// multiplier (and vice versa for variables, via reduced costs >= 0).
#[test]
fn complementary_slackness_holds() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x4b);
    for case in 0..150 {
        let lp = canonical_lp(&mut rng);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal, "case {case}");
        for (r, row) in lp.rows().iter().enumerate() {
            let activity = lp.row_activity(r, &sol.x);
            let slack = activity - row.rhs; // >= 0 for Ge rows
            let y = sol.duals[r];
            assert!(
                slack.abs() < 1e-6 || y.abs() < 1e-6,
                "case {case} row {r}: slack {slack} and dual {y} both nonzero"
            );
        }
    }
}
