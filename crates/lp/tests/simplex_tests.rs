//! Integration tests for the bounded-variable simplex.

use hslb_lp::{solve, LinearProgram, LpStatus, RowSense};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn textbook_two_variable_max() {
    // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
    // Classic Dantzig example: optimum (2, 6), value 36.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(-3.0, 0.0, f64::INFINITY); // minimize the negation
    let y = lp.add_var(-5.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0)], RowSense::Le, 4.0);
    lp.add_row(vec![(y, 2.0)], RowSense::Le, 12.0);
    lp.add_row(vec![(x, 3.0), (y, 2.0)], RowSense::Le, 18.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, -36.0, 1e-8);
    assert_close(sol.x[0], 2.0, 1e-8);
    assert_close(sol.x[1], 6.0, 1e-8);
}

#[test]
fn equality_constraints() {
    // min x + y  s.t. x + y = 5, x - y = 1  ->  x=3, y=2.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, 0.0, f64::INFINITY);
    let y = lp.add_var(1.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Eq, 5.0);
    lp.add_row(vec![(x, 1.0), (y, -1.0)], RowSense::Eq, 1.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 3.0, 1e-8);
    assert_close(sol.x[1], 2.0, 1e-8);
    assert_close(sol.objective, 5.0, 1e-8);
}

#[test]
fn ge_rows_need_phase_one() {
    // min 2x + 3y  s.t. x + y >= 4, x + 3y >= 6, x,y >= 0.
    // Optimum at intersection: x=3, y=1, value 9.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(2.0, 0.0, f64::INFINITY);
    let y = lp.add_var(3.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 4.0);
    lp.add_row(vec![(x, 1.0), (y, 3.0)], RowSense::Ge, 6.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 9.0, 1e-8);
    assert_close(sol.x[0], 3.0, 1e-8);
    assert_close(sol.x[1], 1.0, 1e-8);
}

#[test]
fn detects_infeasible() {
    // x >= 2 and x <= 1 via rows.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0)], RowSense::Ge, 2.0);
    lp.add_row(vec![(x, 1.0)], RowSense::Le, 1.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Infeasible);
}

#[test]
fn detects_infeasible_bounds_vs_row() {
    let mut lp = LinearProgram::new();
    let x = lp.add_var(0.0, 0.0, 1.0);
    let y = lp.add_var(0.0, 0.0, 1.0);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 3.0);
    assert_eq!(solve(&lp).status, LpStatus::Infeasible);
}

#[test]
fn detects_unbounded() {
    // min -x with x >= 0 and no upper limit.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(-1.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, -1.0)], RowSense::Le, 0.0); // -x <= 0, always true
    assert_eq!(solve(&lp).status, LpStatus::Unbounded);
}

#[test]
fn bounded_by_variable_bounds_only() {
    // min -x - 2y over the box [0,3]x[0,4], no rows at all... add one
    // trivial row (the solver requires none, but exercise both paths).
    let mut lp = LinearProgram::new();
    let _x = lp.add_var(-1.0, 0.0, 3.0);
    let _y = lp.add_var(-2.0, 0.0, 4.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 3.0, 1e-9);
    assert_close(sol.x[1], 4.0, 1e-9);

    let mut lp2 = LinearProgram::new();
    let x = lp2.add_var(-1.0, 0.0, 3.0);
    let y = lp2.add_var(-2.0, 0.0, 4.0);
    lp2.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Le, 100.0);
    let sol2 = solve(&lp2);
    assert_eq!(sol2.status, LpStatus::Optimal);
    assert_close(sol2.objective, -11.0, 1e-9);
}

#[test]
fn free_variables() {
    // min x  s.t. x >= -7 via a row (x itself unbounded both ways).
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, f64::NEG_INFINITY, f64::INFINITY);
    lp.add_row(vec![(x, 1.0)], RowSense::Ge, -7.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], -7.0, 1e-8);
}

#[test]
fn negative_rhs_and_coeffs() {
    // min x + y s.t. -x - y <= -4 (i.e. x + y >= 4), 0 <= x,y <= 3.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, 0.0, 3.0);
    let y = lp.add_var(1.0, 0.0, 3.0);
    lp.add_row(vec![(x, -1.0), (y, -1.0)], RowSense::Le, -4.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, 4.0, 1e-8);
}

#[test]
fn duplicate_coefficients_are_summed() {
    // Row written as x + x <= 4 must behave as 2x <= 4.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(-1.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (x, 1.0)], RowSense::Le, 4.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 2.0, 1e-9);
}

#[test]
fn degenerate_lp_terminates() {
    // Beale's classic cycling example (terminates only with anti-cycling).
    let mut lp = LinearProgram::new();
    let x1 = lp.add_var(-0.75, 0.0, f64::INFINITY);
    let x2 = lp.add_var(150.0, 0.0, f64::INFINITY);
    let x3 = lp.add_var(-0.02, 0.0, f64::INFINITY);
    let x4 = lp.add_var(6.0, 0.0, f64::INFINITY);
    lp.add_row(
        vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        RowSense::Le,
        0.0,
    );
    lp.add_row(
        vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        RowSense::Le,
        0.0,
    );
    lp.add_row(vec![(x3, 1.0)], RowSense::Le, 1.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, -0.05, 1e-8);
}

#[test]
fn cut_row_tightens_previous_optimum() {
    // Mimics outer approximation: solve, add a violated cut, re-solve.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(-1.0, 0.0, 10.0);
    let y = lp.add_var(-1.0, 0.0, 10.0);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Le, 12.0);
    let first = solve(&lp);
    assert_eq!(first.status, LpStatus::Optimal);
    assert_close(first.objective, -12.0, 1e-8);

    lp.add_row(vec![(x, 1.0)], RowSense::Le, 3.0); // the "cut"
    let second = solve(&lp);
    assert_eq!(second.status, LpStatus::Optimal);
    assert!(second.objective >= first.objective - 1e-9);
    assert_close(second.objective, -12.0, 1e-8); // y takes up the slack
    lp.add_row(vec![(y, 1.0)], RowSense::Le, 5.0);
    let third = solve(&lp);
    assert_close(third.objective, -8.0, 1e-8);
}

#[test]
fn equality_with_negative_rhs() {
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, f64::NEG_INFINITY, f64::INFINITY);
    let y = lp.add_var(2.0, f64::NEG_INFINITY, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Eq, -3.0);
    lp.add_row(vec![(x, 1.0), (y, -1.0)], RowSense::Eq, 7.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 2.0, 1e-8);
    assert_close(sol.x[1], -5.0, 1e-8);
}

#[test]
fn fixed_variables_are_respected() {
    let mut lp = LinearProgram::new();
    let x = lp.add_var(1.0, 4.0, 4.0); // fixed at 4
    let y = lp.add_var(1.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 10.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[0], 4.0, 1e-9);
    assert_close(sol.x[1], 6.0, 1e-8);
}

#[test]
fn many_columns_sos1_style() {
    // The shape of the paper's z_k binary encoding relaxation: hundreds of
    // columns, two linking rows. min -n  s.t. sum z = 1, sum z*v = n,
    // 0 <= z <= 1. LP optimum picks the largest v.
    let values: Vec<f64> = (1..=500).map(|k| (2 * k) as f64).collect();
    let mut lp = LinearProgram::new();
    let n = lp.add_var(-1.0, 0.0, f64::INFINITY);
    let zs: Vec<_> = values.iter().map(|_| lp.add_var(0.0, 0.0, 1.0)).collect();
    lp.add_row(zs.iter().map(|&z| (z, 1.0)).collect(), RowSense::Eq, 1.0);
    let mut link: Vec<_> = zs.iter().zip(&values).map(|(&z, &v)| (z, v)).collect();
    link.push((n, -1.0));
    lp.add_row(link, RowSense::Eq, 0.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[n.0], 1000.0, 1e-6);
}

#[test]
fn duals_satisfy_strong_duality_on_inequality_lp() {
    // min cᵀx, Ax >= b, x >= 0 and its dual: bᵀy must equal cᵀx at optimum.
    let mut lp = LinearProgram::new();
    let x = lp.add_var(2.0, 0.0, f64::INFINITY);
    let y = lp.add_var(3.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0), (y, 1.0)], RowSense::Ge, 4.0);
    lp.add_row(vec![(x, 1.0), (y, 3.0)], RowSense::Ge, 6.0);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    let dual_obj = 4.0 * sol.duals[0] + 6.0 * sol.duals[1];
    assert_close(dual_obj, sol.objective, 1e-7);
}

mod property {
    use super::*;
    use hslb_rng::Rng;

    /// Random LP built to be feasible by construction: pick a random box
    /// point x*, random rows, and set each rhs so x* satisfies the row.
    /// The solver must return Optimal with objective <= cᵀx* and a feasible
    /// primal point.
    fn feasible_lp(rng: &mut Rng) -> (LinearProgram, Vec<f64>) {
        let n = rng.usize_range(1, 4);
        let m = rng.usize_range(0, 4);
        let xstar = rng.vec_f64(n, -5.0, 5.0);
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_var(rng.f64_range(-3.0, 3.0), xstar[i] - 6.0, xstar[i] + 6.0))
            .collect();
        for _ in 0..m {
            let row = rng.vec_f64(n, -2.0, 2.0);
            let act: f64 = row.iter().zip(&xstar).map(|(a, x)| a * x).sum();
            let terms: Vec<_> = vars.iter().zip(&row).map(|(&v, &a)| (v, a)).collect();
            if rng.bool(0.5) {
                lp.add_row(terms, RowSense::Le, act + 1.0);
            } else {
                lp.add_row(terms, RowSense::Ge, act - 1.0);
            }
        }
        (lp, xstar)
    }

    #[test]
    fn random_feasible_lps_solve_to_feasible_optima() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x1b);
        for case in 0..200 {
            let (lp, xstar) = feasible_lp(&mut rng);
            let sol = solve(&lp);
            assert_eq!(sol.status, LpStatus::Optimal, "case {case}");
            // Solver's point must be feasible.
            assert!(lp.is_feasible(&sol.x, 1e-6), "case {case}");
            // And at least as good as the known feasible point.
            let known = lp.objective_value(&xstar);
            assert!(
                sol.objective <= known + 1e-6,
                "case {case}: objective {} worse than known feasible {}",
                sol.objective,
                known
            );
        }
    }

    #[test]
    fn box_only_lps_hit_the_correct_corner() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x2b);
        for case in 0..100 {
            let n = rng.usize_range(1, 5);
            let costs = rng.vec_f64(n, -4.0, 4.0);
            let mut lp = LinearProgram::new();
            for &c in &costs {
                lp.add_var(c, -1.0, 2.0);
            }
            let sol = solve(&lp);
            assert_eq!(sol.status, LpStatus::Optimal, "case {case}");
            for (x, &c) in sol.x.iter().zip(&costs) {
                let expected = if c > 0.0 {
                    -1.0
                } else if c < 0.0 {
                    2.0
                } else {
                    *x
                };
                assert!((x - expected).abs() < 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn traced_solve_emits_one_lp_solved_event_with_pivot_count() {
    use hslb_obs::{Event, RingBuffer, Trace};
    use std::sync::Arc;

    let mut lp = LinearProgram::new();
    let x = lp.add_var(-3.0, 0.0, f64::INFINITY);
    let y = lp.add_var(-5.0, 0.0, f64::INFINITY);
    lp.add_row(vec![(x, 1.0)], RowSense::Le, 4.0);
    lp.add_row(vec![(y, 2.0)], RowSense::Le, 12.0);
    lp.add_row(vec![(x, 3.0), (y, 2.0)], RowSense::Le, 18.0);

    let ring = Arc::new(RingBuffer::new(16));
    let opts = hslb_lp::SimplexOptions {
        trace: Trace::to_sink(ring.clone()),
        ..Default::default()
    };
    let sol = hslb_lp::solve_with(&lp, &opts);
    assert_eq!(sol.status, LpStatus::Optimal);
    let events = ring.snapshot();
    assert_eq!(events.len(), 1, "one event per solve: {events:?}");
    assert_eq!(
        events[0],
        Event::LpSolved {
            pivots: sol.iterations as u64
        }
    );
}

mod sparse_backend {
    use super::*;
    use hslb_linalg::LinalgBackend;
    use hslb_lp::{solve_warm, solve_with, SimplexOptions, WarmBasis};
    use hslb_rng::Rng;

    fn opts(backend: LinalgBackend) -> SimplexOptions {
        SimplexOptions {
            backend,
            ..Default::default()
        }
    }

    /// Random feasible LP (same construction as the property module, wider
    /// shapes so the basis has enough rows for the sparse path to matter).
    fn feasible_lp(rng: &mut Rng) -> (LinearProgram, Vec<f64>) {
        let n = rng.usize_range(2, 8);
        let m = rng.usize_range(1, 8);
        let xstar = rng.vec_f64(n, -5.0, 5.0);
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_var(rng.f64_range(-3.0, 3.0), xstar[i] - 6.0, xstar[i] + 6.0))
            .collect();
        for _ in 0..m {
            let row = rng.vec_f64(n, -2.0, 2.0);
            let act: f64 = row.iter().zip(&xstar).map(|(a, x)| a * x).sum();
            let terms: Vec<_> = vars.iter().zip(&row).map(|(&v, &a)| (v, a)).collect();
            match rng.usize_range(0, 3) {
                0 => lp.add_row(terms, RowSense::Le, act + 1.0),
                1 => lp.add_row(terms, RowSense::Ge, act - 1.0),
                _ => lp.add_row(terms, RowSense::Eq, act),
            };
        }
        (lp, xstar)
    }

    #[test]
    fn sparse_and_dense_backends_agree_on_random_lps() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x5a);
        for case in 0..200 {
            let (lp, _) = feasible_lp(&mut rng);
            let dense = solve_with(&lp, &opts(LinalgBackend::Dense));
            let sparse = solve_with(&lp, &opts(LinalgBackend::Sparse));
            assert_eq!(dense.status, sparse.status, "case {case}");
            assert_eq!(dense.status, LpStatus::Optimal, "case {case}");
            assert!(
                (dense.objective - sparse.objective).abs() <= 1e-7,
                "case {case}: dense {} vs sparse {}",
                dense.objective,
                sparse.objective
            );
            assert!(lp.is_feasible(&sparse.x, 1e-6), "case {case}");
            assert!(sparse.factorizations >= 1, "case {case}");
            assert_eq!(dense.factor_updates, 0, "dense path records no etas");
        }
    }

    #[test]
    fn sparse_warm_restart_agrees_with_dense() {
        let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x6c);
        for case in 0..50 {
            let (mut lp, xstar) = feasible_lp(&mut rng);
            let mut warm_d = WarmBasis::new();
            let mut warm_s = WarmBasis::new();
            let d0 = solve_warm(&lp, &opts(LinalgBackend::Dense), &mut warm_d);
            let s0 = solve_warm(&lp, &opts(LinalgBackend::Sparse), &mut warm_s);
            assert_eq!(d0.status, s0.status, "case {case} cold");
            // Append a cut violated at the incumbent (supported by x*) and
            // re-solve warm under both backends.
            let n = xstar.len();
            let row = rng.vec_f64(n, -2.0, 2.0);
            let act: f64 = row.iter().zip(&xstar).map(|(a, x)| a * x).sum();
            let terms: Vec<_> = (0..n).map(|i| (hslb_lp::VarId(i), row[i])).collect();
            lp.add_row(terms, RowSense::Le, act + 0.5);
            let d1 = solve_warm(&lp, &opts(LinalgBackend::Dense), &mut warm_d);
            let s1 = solve_warm(&lp, &opts(LinalgBackend::Sparse), &mut warm_s);
            assert_eq!(d1.status, s1.status, "case {case} warm");
            if d1.status == LpStatus::Optimal {
                assert!(
                    (d1.objective - s1.objective).abs() <= 1e-7,
                    "case {case}: dense {} vs sparse {}",
                    d1.objective,
                    s1.objective
                );
            }
        }
    }
}
