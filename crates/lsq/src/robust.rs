//! Robust (Huber) fitting via iteratively reweighted least squares.
//!
//! The CESM paper's sea-ice timings carry one-sided decomposition outliers
//! ("this increased the noise in the sea ice performance curve fit and
//! impacted the timing estimates", §IV-A). Ordinary least squares lets a
//! single inflated sample drag the whole curve; the Huber loss caps each
//! residual's influence at `k` robust standard deviations. IRLS solves a
//! sequence of *weighted* least-squares problems with weights
//! `w_i = min(1, k·s / |r_i|)` where `s` is the MAD scale of the residuals.

use crate::lm::{levenberg_marquardt, LmOptions, LmReport, LsqError};
use crate::problem::{Bounds, Residuals};
use hslb_linalg::Matrix;

/// Huber IRLS options.
#[derive(Debug, Clone)]
pub struct RobustOptions {
    /// Huber threshold in robust standard deviations (1.345 gives 95%
    /// efficiency under Gaussian noise).
    pub k: f64,
    /// Reweighting rounds.
    pub rounds: usize,
    /// Inner Levenberg–Marquardt options.
    pub lm: LmOptions,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            k: 1.345,
            rounds: 5,
            lm: LmOptions::default(),
        }
    }
}

/// Weighted view of a problem: residual `i` is scaled by `sqrt(w_i)`.
struct Weighted<'a, P: Residuals + ?Sized> {
    inner: &'a P,
    sqrt_w: Vec<f64>,
}

impl<P: Residuals + ?Sized> Residuals for Weighted<'_, P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) {
        self.inner.residuals(p, out);
        for (o, w) in out.iter_mut().zip(&self.sqrt_w) {
            *o *= w;
        }
    }

    fn jacobian(&self, p: &[f64], out: &mut Matrix) {
        self.inner.jacobian(p, out);
        for i in 0..out.rows() {
            let w = self.sqrt_w[i];
            for j in 0..out.cols() {
                out[(i, j)] *= w;
            }
        }
    }
}

/// MAD scales at or below this count as a (near-)perfect fit.
const SCALE_FLOOR: f64 = 1e-12;
/// Weights within this of 1.0 are "no down-weighting" — convergence test.
const UNIT_WEIGHT_TOL: f64 = 1e-12;

/// Median of a slice (copying; fine at fitting sizes).
fn median(values: &[f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        0.5 * (v[mid - 1] + v[mid])
    } else {
        v[mid]
    }
}

/// Huber-robust fit: IRLS around the projected Levenberg–Marquardt core.
///
/// Returns the final (unweighted-problem) report; its `cost` field is the
/// plain sum of squares at the robust estimate, for comparability with
/// [`levenberg_marquardt`].
pub fn huber_fit<P: Residuals + ?Sized>(
    problem: &P,
    p0: &[f64],
    bounds: &Bounds,
    opts: &RobustOptions,
) -> Result<LmReport, LsqError> {
    let mut report = levenberg_marquardt(problem, p0, bounds, &opts.lm)?;
    let m = problem.len();
    let mut residuals = vec![0.0; m];
    for _ in 0..opts.rounds {
        problem.residuals(&report.params, &mut residuals);
        let abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
        // MAD scale; the 1.4826 factor makes it consistent for Gaussians.
        let scale = 1.4826 * median(&abs);
        if scale <= SCALE_FLOOR {
            break; // (near-)perfect fit: nothing to down-weight
        }
        let sqrt_w: Vec<f64> = residuals
            .iter()
            .map(|r| {
                let z = r.abs() / scale;
                if z <= opts.k {
                    1.0
                } else {
                    (opts.k / z).sqrt()
                }
            })
            .collect();
        if sqrt_w.iter().all(|w| (*w - 1.0).abs() < UNIT_WEIGHT_TOL) {
            break; // no outliers left
        }
        let weighted = Weighted {
            inner: problem,
            sqrt_w,
        };
        report = levenberg_marquardt(&weighted, &report.params, bounds, &opts.lm)?;
    }
    // Report the unweighted cost at the robust parameters.
    problem.residuals(&report.params, &mut residuals);
    report.cost = residuals.iter().map(|r| r * r).sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CurveFit;

    /// Line data with one gross outlier: robust fit must ignore it.
    #[test]
    fn huber_resists_a_gross_outlier() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        ys[4] += 40.0; // outlier
        let fit = CurveFit::new(xs, ys, 2, |x, p| p[0] * x + p[1]);
        let ols = levenberg_marquardt(&fit, &[0.0, 0.0], &Bounds::free(2), &LmOptions::default())
            .unwrap();
        let rob = huber_fit(
            &fit,
            &[0.0, 0.0],
            &Bounds::free(2),
            &RobustOptions::default(),
        )
        .unwrap();
        let ols_err = (ols.params[0] - 2.0).abs() + (ols.params[1] - 1.0).abs();
        let rob_err = (rob.params[0] - 2.0).abs() + (rob.params[1] - 1.0).abs();
        assert!(
            rob_err < ols_err * 0.25,
            "robust {:?} should beat OLS {:?}",
            rob.params,
            ols.params
        );
        assert!((rob.params[0] - 2.0).abs() < 0.05, "{:?}", rob.params);
    }

    /// One-sided outliers, like CICE's bad decompositions (always slower).
    #[test]
    fn huber_resists_one_sided_decomposition_noise() {
        let ns: Vec<f64> = vec![8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
        let mut ys: Vec<f64> = ns.iter().map(|&n| 7774.0 / n + 11.8).collect();
        // Two samples hit a bad decomposition: +15%.
        ys[1] *= 1.15;
        ys[4] *= 1.15;
        let fit = CurveFit::new(ns, ys, 2, |n, p| p[0] / n + p[1]);
        let start = [1000.0, 1.0];
        let ols = levenberg_marquardt(&fit, &start, &Bounds::nonnegative(2), &LmOptions::default())
            .unwrap();
        let rob = huber_fit(
            &fit,
            &start,
            &Bounds::nonnegative(2),
            &RobustOptions::default(),
        )
        .unwrap();
        let ols_err = (ols.params[0] - 7774.0).abs() / 7774.0;
        let rob_err = (rob.params[0] - 7774.0).abs() / 7774.0;
        assert!(rob_err < ols_err, "robust {rob_err} vs ols {ols_err}");
        assert!(rob_err < 0.02, "{:?}", rob.params);
    }

    #[test]
    fn clean_data_matches_plain_lm() {
        let xs: Vec<f64> = (1..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x).collect();
        let fit = CurveFit::new(xs, ys, 1, |x, p| p[0] * x);
        let rob = huber_fit(&fit, &[1.0], &Bounds::free(1), &RobustOptions::default()).unwrap();
        assert!((rob.params[0] - 3.0).abs() < 1e-8);
        assert!(rob.cost < 1e-12);
    }

    #[test]
    fn median_edge_cases() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }
}
