//! Problem definition for nonlinear least squares.

use hslb_linalg::Matrix;

/// Box constraints `lo <= p <= hi` on the parameter vector.
///
/// The papers constrain all fitting parameters to be nonnegative (Table II
/// line 11); [`Bounds::nonnegative`] builds exactly that.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl Bounds {
    /// Unbounded box of the given dimension.
    pub fn free(dim: usize) -> Self {
        Bounds {
            lo: vec![f64::NEG_INFINITY; dim],
            hi: vec![f64::INFINITY; dim],
        }
    }

    /// `p >= 0` in every coordinate (the paper's constraint on a, b, c, d).
    pub fn nonnegative(dim: usize) -> Self {
        Bounds {
            lo: vec![0.0; dim],
            hi: vec![f64::INFINITY; dim],
        }
    }

    /// Explicit lower/upper vectors.
    ///
    /// # Panics
    /// Panics if lengths differ or any `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound vectors must have equal length");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "lower bound {l} exceeds upper bound {h}");
        }
        Bounds { lo, hi }
    }

    /// Dimension of the box.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Projects `p` onto the box in place.
    pub fn project(&self, p: &mut [f64]) {
        hslb_linalg::vecops::clamp_into_bounds(p, &self.lo, &self.hi);
    }

    /// Whether `p` lies inside the box (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(v, (l, h))| *v >= *l && *v <= *h)
    }
}

/// A nonlinear least-squares problem: `min_p ||r(p)||²`.
///
/// Implementors provide the residual vector; the Jacobian defaults to forward
/// finite differences but should be overridden with the analytic form when
/// available (the performance-model crate does).
pub trait Residuals: Sync {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// Number of residuals (observations).
    fn len(&self) -> usize;

    /// Whether the problem has no observations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `out` (length [`Residuals::len`]) with residuals at `p`.
    fn residuals(&self, p: &[f64], out: &mut [f64]);

    /// Fills the `len x dim` Jacobian `J_ij = ∂r_i/∂p_j` at `p`.
    ///
    /// Default: forward finite differences with per-coordinate step
    /// `h = sqrt(eps) * max(1, |p_j|)`.
    fn jacobian(&self, p: &[f64], out: &mut Matrix) {
        numeric_jacobian(self, p, out);
    }

    /// Sum of squared residuals at `p`.
    fn cost(&self, p: &[f64]) -> f64 {
        let mut r = vec![0.0; self.len()];
        self.residuals(p, &mut r);
        r.iter().map(|v| v * v).sum()
    }
}

/// Forward finite-difference Jacobian, usable to validate analytic ones.
pub fn numeric_jacobian<P: Residuals + ?Sized>(problem: &P, p: &[f64], out: &mut Matrix) {
    let m = problem.len();
    let n = problem.dim();
    debug_assert_eq!(out.rows(), m);
    debug_assert_eq!(out.cols(), n);
    let mut base = vec![0.0; m];
    problem.residuals(p, &mut base);
    let mut pp = p.to_vec();
    let mut perturbed = vec![0.0; m];
    for j in 0..n {
        let h = f64::EPSILON.sqrt() * p[j].abs().max(1.0);
        let old = pp[j];
        pp[j] = old + h;
        problem.residuals(&pp, &mut perturbed);
        pp[j] = old;
        for i in 0..m {
            out[(i, j)] = (perturbed[i] - base[i]) / h;
        }
    }
}

/// A simple generic curve-fitting problem over observation pairs `(x, y)`
/// and a model closure `f(x, p)`. Residuals are `y_i - f(x_i, p)`.
pub struct CurveFit<F> {
    xs: Vec<f64>,
    ys: Vec<f64>,
    dim: usize,
    model: F,
}

impl<F: Fn(f64, &[f64]) -> f64 + Sync> CurveFit<F> {
    /// Builds a curve-fitting problem.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` have different lengths.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, dim: usize, model: F) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs and ys must pair up");
        CurveFit { xs, ys, dim, model }
    }

    /// Observed inputs.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Observed outputs.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Model predictions at `p` for every observation.
    pub fn predictions(&self, p: &[f64]) -> Vec<f64> {
        self.xs.iter().map(|&x| (self.model)(x, p)).collect()
    }
}

impl<F: Fn(f64, &[f64]) -> f64 + Sync> Residuals for CurveFit<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.xs.len()
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) {
        for ((o, &x), &y) in out.iter_mut().zip(&self.xs).zip(&self.ys) {
            *o = y - (self.model)(x, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_project_and_contains() {
        let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let mut p = vec![2.0, -3.0];
        assert!(!b.contains(&p));
        b.project(&mut p);
        assert_eq!(p, vec![1.0, -1.0]);
        assert!(b.contains(&p));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn bounds_reject_inverted() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn nonnegative_bounds() {
        let b = Bounds::nonnegative(3);
        assert!(b.contains(&[0.0, 5.0, 1e9]));
        assert!(!b.contains(&[-1e-9, 0.0, 0.0]));
    }

    #[test]
    fn numeric_jacobian_linear_model_is_exact() {
        // r_i = y_i - (p0 * x_i + p1): Jacobian columns are (-x_i, -1).
        let fit = CurveFit::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 0.0], 2, |x, p| {
            p[0] * x + p[1]
        });
        let mut jac = Matrix::zeros(3, 2);
        fit.jacobian(&[1.0, 1.0], &mut jac);
        for i in 0..3 {
            assert!((jac[(i, 0)] - (-(i as f64))).abs() < 1e-6);
            assert!((jac[(i, 1)] - (-1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_is_sum_of_squares() {
        let fit = CurveFit::new(vec![1.0, 2.0], vec![3.0, 5.0], 1, |x, p| p[0] * x);
        // p = 1: residuals are (3-1, 5-2) = (2, 3); cost = 13.
        assert!((fit.cost(&[1.0]) - 13.0).abs() < 1e-12);
    }
}
