//! Parallel multistart wrapper around Levenberg–Marquardt.
//!
//! Starts are partitioned over scoped `std` threads (at most one per
//! available core); there is no RNG anywhere in this module — the caller
//! supplies the starting points, so multistart is deterministic given its
//! inputs and safe for seeded differential testing.

use crate::lm::{levenberg_marquardt, LmOptions, LmReport, LsqError};
use crate::problem::{Bounds, Residuals};

/// Applies `f` to every element, running chunks on scoped threads.
///
/// Results come back in input order. With one available core (or one input)
/// this degrades to a plain sequential map.
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    // lint:allow(ambient-entropy): chunk sizing only — results come back in input order regardless of the worker count, so the parallelism query never reaches solver state
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        for (slots, chunk_items) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            s.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Result of a multistart run.
#[derive(Debug, Clone)]
pub struct MultistartReport {
    /// Best run across all starting points.
    pub best: LmReport,
    /// Index (into the provided starts) of the winning run.
    pub best_start: usize,
    /// Final costs of every start (`f64::INFINITY` for failed runs), in the
    /// order the starts were given. Useful for the paper's observation that
    /// "differences in the parameter values among locally optimal solutions
    /// led to similar quality node allocations".
    pub costs: Vec<f64>,
    /// Number of starts that failed outright (non-finite model, etc.).
    pub failures: usize,
    /// LM iterations summed over every successful start — the multistart's
    /// total work, deterministic for fixed inputs (see `hslb-obs`).
    pub total_iters: usize,
}

/// Runs LM from every starting point in parallel and keeps the best result.
///
/// Returns an error only if *every* start fails.
pub fn multistart<P: Residuals + ?Sized>(
    problem: &P,
    starts: &[Vec<f64>],
    bounds: &Bounds,
    opts: &LmOptions,
) -> Result<MultistartReport, LsqError> {
    assert!(
        !starts.is_empty(),
        "multistart requires at least one starting point"
    );
    let runs: Vec<Result<LmReport, LsqError>> =
        par_map(starts, |p0| levenberg_marquardt(problem, p0, bounds, opts));

    let mut best: Option<(usize, LmReport)> = None;
    let mut costs = Vec::with_capacity(runs.len());
    let mut failures = 0;
    let mut total_iters = 0;
    let mut first_err = None;
    for (i, run) in runs.into_iter().enumerate() {
        match run {
            Ok(rep) => {
                costs.push(rep.cost);
                total_iters += rep.iters;
                let better = match &best {
                    None => true,
                    Some((_, b)) => rep.cost < b.cost,
                };
                if better {
                    best = Some((i, rep));
                }
            }
            Err(e) => {
                costs.push(f64::INFINITY);
                failures += 1;
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some((best_start, best)) => Ok(MultistartReport {
            best,
            best_start,
            costs,
            failures,
            total_iters,
        }),
        None => Err(first_err.expect("at least one run must have executed")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CurveFit;

    #[test]
    fn multistart_escapes_bad_start() {
        // Model with a poor local basin: a/n^c + d. A start with huge c gets
        // stuck; a sane start succeeds. Multistart must return the good one.
        let ns = [8.0, 16.0, 32.0, 64.0, 128.0];
        let ys: Vec<f64> = ns.iter().map(|&n| 1000.0 / n + 2.0).collect();
        let fit = CurveFit::new(ns.to_vec(), ys, 3, |n: f64, p: &[f64]| {
            p[0] / n.powf(p[1]) + p[2]
        });
        let starts = vec![
            vec![1.0, 12.0, 0.0],
            vec![500.0, 1.0, 0.0],
            vec![10.0, 0.5, 5.0],
        ];
        let rep = multistart(
            &fit,
            &starts,
            &Bounds::nonnegative(3),
            &LmOptions::default(),
        )
        .unwrap();
        assert!(rep.best.cost < 1e-6, "{rep:?}");
        assert_eq!(rep.costs.len(), 3);
        assert!(
            rep.costs[rep.best_start] <= rep.costs.iter().cloned().fold(f64::MAX, f64::min) + 1e-12
        );
    }

    #[test]
    fn reports_partial_failures() {
        let fit = CurveFit::new(vec![1.0, 2.0], vec![1.0, 2.0], 1, |x, p| {
            if p[0] < 0.5 {
                f64::NAN // poisoned basin
            } else {
                p[0] * x
            }
        });
        let starts = vec![vec![0.0], vec![1.0]];
        let rep = multistart(
            &fit,
            &starts,
            &Bounds::nonnegative(1),
            &LmOptions::default(),
        )
        .unwrap();
        assert_eq!(rep.failures, 1);
        assert!(rep.best.cost < 1e-10);
        assert_eq!(rep.best_start, 1);
    }

    #[test]
    fn all_failures_propagate_error() {
        let fit = CurveFit::new(vec![1.0], vec![1.0], 1, |_x, _p| f64::NAN);
        let starts = vec![vec![0.0], vec![1.0]];
        let err = multistart(
            &fit,
            &starts,
            &Bounds::nonnegative(1),
            &LmOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one starting point")]
    fn empty_starts_panic() {
        let fit = CurveFit::new(vec![1.0], vec![1.0], 1, |x, p| p[0] * x);
        let _ = multistart(&fit, &[], &Bounds::free(1), &LmOptions::default());
    }
}
