//! Bound-constrained nonlinear least squares for the HSLB fitting step.
//!
//! The HSLB papers (SC'12 §Fit, IPDPSW'14 Table II line 10) fit the
//! performance function `T(n) = a/n^c + b·n + d` to observed component wall
//! clocks by solving
//!
//! ```text
//! min_{a,b,c,d >= 0}  Σ_i ( y_i - T(n_i; a,b,c,d) )²
//! ```
//!
//! This is a small non-convex least-squares problem; the papers note that
//! different starting points reach different local optima of similar quality.
//! This crate provides:
//!
//! * [`Residuals`] — the problem trait (residual vector + optional analytic
//!   Jacobian, with a finite-difference default).
//! * [`levenberg_marquardt`] — a projected Levenberg–Marquardt solver with
//!   box constraints.
//! * [`multistart()`](multistart()) — parallel multistart (scoped threads) over a set of starting
//!   points, mirroring the papers' "we experimented with different starting
//!   solutions" methodology.
//! * [`stats`] — goodness-of-fit statistics (R², RMSE) used to judge fits the
//!   way the paper does ("R² was very close to 1 for each component").

pub mod lm;
pub mod multistart;
pub mod problem;
pub mod robust;
pub mod stats;

pub use lm::{levenberg_marquardt, LmOptions, LmOutcome, LmReport, LsqError};
pub use multistart::{multistart, MultistartReport};
pub use problem::{Bounds, CurveFit, Residuals};
pub use robust::{huber_fit, RobustOptions};
pub use stats::{r_squared, rmse, sse, FitQuality};
