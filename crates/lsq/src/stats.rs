//! Goodness-of-fit statistics.
//!
//! The paper judges fit quality by R² ("In our tests, R² was very close to 1
//! for each component", §III-C); these helpers compute that and the usual
//! companions.

/// Sum of squared errors between observations and predictions.
pub fn sse(observed: &[f64], predicted: &[f64]) -> f64 {
    debug_assert_eq!(observed.len(), predicted.len());
    observed
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum()
}

/// Root mean squared error.
pub fn rmse(observed: &[f64], predicted: &[f64]) -> f64 {
    if observed.is_empty() {
        return 0.0;
    }
    (sse(observed, predicted) / observed.len() as f64).sqrt()
}

/// Relative threshold below which the total variance counts as degenerate:
/// `SST ≤ this · Σy²` means the observations are constant up to float noise
/// (spread below ~1e-12 of their magnitude), so `1 - SSE/SST` would be a
/// ratio of rounding errors, not a fit statistic.
const DEGENERATE_SST_REL: f64 = 1e-24;

/// Coefficient of determination `R² = 1 - SSE/SST`.
///
/// Degenerate cases: with (near-)zero total variance, returns `1.0` for a
/// fit whose error is inside the same noise floor and `0.0` otherwise
/// (conventional choice; keeps the "close to 1 is good" reading). The
/// degeneracy test is *relative*: observations that are constant up to
/// float noise (e.g. `[5.0, 5.0 + 1e-13]`) must not fall through to
/// `1 - SSE/SST`, which would divide two rounding errors and report an
/// arbitrary, often large-negative, R² for an essentially perfect fit.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    debug_assert_eq!(observed.len(), predicted.len());
    if observed.is_empty() {
        return 1.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let sst: f64 = observed.iter().map(|y| (y - mean) * (y - mean)).sum();
    let sse = sse(observed, predicted);
    let scale = observed
        .iter()
        .map(|y| y * y)
        .sum::<f64>()
        .max(f64::MIN_POSITIVE);
    if sst <= DEGENERATE_SST_REL * scale {
        return if sse <= DEGENERATE_SST_REL * scale {
            1.0
        } else {
            0.0
        };
    }
    1.0 - sse / sst
}

/// Bundle of fit-quality numbers, printed in fit reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitQuality {
    pub r_squared: f64,
    pub rmse: f64,
    pub sse: f64,
    /// Largest relative error `|y - p| / max(|y|, eps)` over the data.
    pub max_rel_err: f64,
}

impl FitQuality {
    /// Computes all statistics from observation/prediction pairs.
    pub fn compute(observed: &[f64], predicted: &[f64]) -> Self {
        let max_rel_err = observed
            .iter()
            .zip(predicted)
            .map(|(y, p)| (y - p).abs() / y.abs().max(f64::EPSILON))
            .fold(0.0, f64::max);
        FitQuality {
            r_squared: r_squared(observed, predicted),
            rmse: rmse(observed, predicted),
            sse: sse(observed, predicted),
            max_rel_err,
        }
    }

    /// The paper's acceptance bar: R² "very close to 1".
    pub fn is_good(&self) -> bool {
        /// Smallest R² this crate reads as "very close to 1".
        const R_SQUARED_GOOD: f64 = 0.95;
        self.r_squared > R_SQUARED_GOOD
    }
}

impl std::fmt::Display for FitQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R²={:.5} RMSE={:.4} SSE={:.4} max_rel_err={:.3}%",
            self.r_squared,
            self.rmse,
            self.sse,
            self.max_rel_err * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&y, &y), 1.0);
        assert_eq!(rmse(&y, &y), 0.0);
        let q = FitQuality::compute(&y, &y);
        assert!(q.is_good());
        assert_eq!(q.max_rel_err, 0.0);
    }

    #[test]
    fn mean_prediction_gives_zero_r2() {
        let y = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        assert!((r_squared(&y, &mean)).abs() < 1e-12);
    }

    #[test]
    fn constant_observations_degenerate() {
        let y = [5.0, 5.0];
        assert_eq!(r_squared(&y, &[5.0, 5.0]), 1.0);
        assert_eq!(r_squared(&y, &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors 3 and 4 -> mean square 12.5 -> rmse ~3.5355
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - 12.5_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn worse_fit_means_lower_r2() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let good = [1.1, 2.0, 2.9, 4.0];
        let bad = [2.0, 1.0, 4.0, 2.0];
        assert!(r_squared(&y, &good) > r_squared(&y, &bad));
    }

    #[test]
    fn display_formats() {
        let q = FitQuality::compute(&[1.0, 2.0], &[1.0, 2.0]);
        let s = format!("{q}");
        assert!(s.contains("R²=1.00000"), "{s}");
    }

    #[test]
    fn near_constant_observations_do_not_explode() {
        // SST here is ~5e-27 — nonzero, but pure rounding noise. The old
        // exact `sst == 0.0` degeneracy test fell through to `1 - SSE/SST`
        // and reported R² = -1.0 for this essentially perfect fit.
        let obs = [5.0, 5.0 + 1e-13];
        let pred = [5.0, 5.0];
        assert_eq!(r_squared(&obs, &pred), 1.0);

        // A genuinely bad fit on near-constant data still reads as 0.
        let bad = [7.0, 7.0];
        assert_eq!(r_squared(&obs, &bad), 0.0);

        // Ordinary data with real variance is untouched by the threshold.
        let y = [1.0, 2.0, 3.0, 4.0];
        let p = [1.1, 1.9, 3.2, 3.8];
        let direct = 1.0 - sse(&y, &p) / 5.0; // SST of y is exactly 5
        assert!((r_squared(&y, &p) - direct).abs() < 1e-15);
    }
}
