//! Projected Levenberg–Marquardt with box constraints.

use crate::problem::{Bounds, Residuals};
use hslb_linalg::{vecops, Cholesky, Matrix};
use hslb_obs::{Event, Trace};

/// Solver options.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum number of accepted-or-rejected iterations.
    pub max_iters: usize,
    /// Convergence on the projected gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence on the relative step size.
    pub step_tol: f64,
    /// Convergence on the relative cost decrease.
    pub cost_tol: f64,
    /// Initial damping factor (scaled by the largest `JᵀJ` diagonal entry).
    pub initial_lambda: f64,
    /// Event trace (off by default; see `hslb-obs`). When enabled, every
    /// accepted step emits one `LmStep` event with the post-step cost.
    pub trace: Trace,
}

/// Default gradient-norm convergence tolerance.
const DEFAULT_GRAD_TOL: f64 = 1e-10;
/// Default relative step-length convergence tolerance.
const DEFAULT_STEP_TOL: f64 = 1e-12;
/// Default relative cost-decrease convergence tolerance.
const DEFAULT_COST_TOL: f64 = 1e-14;
/// Relative floor on the `JᵀJ` diagonal used for Marquardt scaling, so
/// insensitive (zero-column) parameters still receive damping.
const DIAG_FLOOR_REL: f64 = 1e-12;
/// Smallest damping factor `lambda` is allowed to shrink to.
const LAMBDA_MIN: f64 = 1e-12;
/// Guard against dividing by a zero cost in the relative-decrease test.
const COST_DIV_FLOOR: f64 = 1e-300;
/// Damping shrink applied after an accepted step (the classic Marquardt
/// schedule pairs a gentle x0.3 shrink with an aggressive x10 growth, so
/// rejected steps back off faster than accepted ones relax).
const LAMBDA_SHRINK: f64 = 0.3;
/// Damping growth applied after a rejected step.
const LAMBDA_GROW: f64 = 10.0;

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iters: 200,
            grad_tol: DEFAULT_GRAD_TOL,
            step_tol: DEFAULT_STEP_TOL,
            cost_tol: DEFAULT_COST_TOL,
            initial_lambda: 1e-3,
            trace: Trace::off(),
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmOutcome {
    /// Projected gradient below tolerance — first-order stationary point.
    GradientConverged,
    /// Step shorter than tolerance.
    SmallStep,
    /// Relative cost decrease below tolerance.
    SmallCostDecrease,
    /// Iteration budget exhausted.
    MaxIterations,
}

/// Errors from a Levenberg–Marquardt run.
#[derive(Debug, Clone, PartialEq)]
pub enum LsqError {
    /// Starting point outside the bounds box (after projection this cannot
    /// happen; reported only for raw misuse).
    DimensionMismatch { expected: usize, got: usize },
    /// Residuals or Jacobian produced non-finite values.
    NonFiniteModel,
}

impl std::fmt::Display for LsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsqError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "parameter dimension mismatch: expected {expected}, got {got}"
                )
            }
            LsqError::NonFiniteModel => write!(f, "model produced non-finite values"),
        }
    }
}

impl std::error::Error for LsqError {}

/// Result of a Levenberg–Marquardt run.
#[derive(Debug, Clone)]
pub struct LmReport {
    /// Best parameters found (inside bounds).
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Final projected-gradient infinity norm.
    pub grad_norm: f64,
    /// Iterations performed.
    pub iters: usize,
    /// Termination reason.
    pub outcome: LmOutcome,
}

/// Minimizes `||r(p)||²` subject to `p` in `bounds`, starting from `p0`.
///
/// The classic damped normal-equations LM step
/// `(JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r` is used, with the candidate projected onto
/// the bounds box before evaluation (projected LM). `λ` shrinks on success
/// and grows on failure. Convergence is declared on the **projected**
/// gradient, so active nonnegativity constraints (common here: `b` and `c`
/// pinned at zero, as the paper observes on Intrepid) do not stall the test.
pub fn levenberg_marquardt<P: Residuals + ?Sized>(
    problem: &P,
    p0: &[f64],
    bounds: &Bounds,
    opts: &LmOptions,
) -> Result<LmReport, LsqError> {
    let n = problem.dim();
    let m = problem.len();
    if p0.len() != n {
        return Err(LsqError::DimensionMismatch {
            expected: n,
            got: p0.len(),
        });
    }
    if bounds.dim() != n {
        return Err(LsqError::DimensionMismatch {
            expected: n,
            got: bounds.dim(),
        });
    }

    let mut p = p0.to_vec();
    bounds.project(&mut p);

    let mut r = vec![0.0; m];
    problem.residuals(&p, &mut r);
    if !r.iter().all(|v| v.is_finite()) {
        return Err(LsqError::NonFiniteModel);
    }
    let mut cost = vecops::dot(&r, &r);

    let mut jac = Matrix::zeros(m, n);
    let mut lambda = opts.initial_lambda;
    let mut outcome = LmOutcome::MaxIterations;
    let mut iters = 0;
    let mut grad_norm = f64::INFINITY;

    for iter in 0..opts.max_iters {
        iters = iter + 1;
        problem.jacobian(&p, &mut jac);
        if !jac.as_slice().iter().all(|v| v.is_finite()) {
            return Err(LsqError::NonFiniteModel);
        }
        // g = Jᵀ r  (gradient of ½||r||² is Jᵀr; sign handled below).
        let g = jac.matvec_transposed(&r);
        grad_norm = projected_gradient_norm(&p, &g, bounds);
        if grad_norm < opts.grad_tol {
            outcome = LmOutcome::GradientConverged;
            break;
        }

        // Active-set reduction: a variable pinned at a bound whose gradient
        // pushes further outward is frozen for this iteration, otherwise the
        // coupled Gauss-Newton step keeps overshooting through the bound and
        // convergence crawls.
        let active: Vec<bool> = (0..n)
            .map(|i| (p[i] <= bounds.lo[i] && g[i] > 0.0) || (p[i] >= bounds.hi[i] && g[i] < 0.0))
            .collect();
        let mut jtj = jac.gram();
        let mut g = g;
        for i in 0..n {
            if active[i] {
                g[i] = 0.0;
                for j in 0..n {
                    jtj[(i, j)] = 0.0;
                    jtj[(j, i)] = 0.0;
                }
                jtj[(i, i)] = 1.0; // keeps the damped system nonsingular; δ_i = 0
            }
        }
        let jtj = jtj;
        let max_diag = (0..n).map(|i| jtj[(i, i)]).fold(f64::EPSILON, f64::max);

        // Inner damping loop: grow lambda until an acceptable step is found.
        let mut stepped = false;
        for _ in 0..25 {
            let mut lhs = jtj.clone();
            // Marquardt scaling: damp proportionally to the diagonal, with a
            // floor so zero-diagonal (insensitive) parameters stay bounded.
            for i in 0..n {
                let d = jtj[(i, i)].max(DIAG_FLOOR_REL * max_diag);
                lhs[(i, i)] += lambda * d;
            }
            let delta = match Cholesky::new(&lhs) {
                Ok(ch) => {
                    let rhs: Vec<f64> = g.iter().map(|v| -v).collect();
                    ch.solve(&rhs)
                }
                Err(_) => {
                    lambda *= LAMBDA_GROW;
                    continue;
                }
            };
            let mut candidate = p.clone();
            vecops::axpy(1.0, &delta, &mut candidate);
            bounds.project(&mut candidate);

            let mut r_new = vec![0.0; m];
            problem.residuals(&candidate, &mut r_new);
            let cost_new = if r_new.iter().all(|v| v.is_finite()) {
                vecops::dot(&r_new, &r_new)
            } else {
                f64::INFINITY
            };

            if cost_new < cost {
                let step_len = vecops::dist2(&candidate, &p);
                let rel_decrease = (cost - cost_new) / cost.max(COST_DIV_FLOOR);
                p = candidate;
                r = r_new;
                let prev_cost = cost;
                cost = cost_new;
                lambda = (lambda * LAMBDA_SHRINK).max(LAMBDA_MIN);
                stepped = true;
                opts.trace.emit(|| Event::LmStep {
                    iter: iters as u64,
                    cost,
                });
                if step_len < opts.step_tol * (1.0 + vecops::norm2(&p)) {
                    outcome = LmOutcome::SmallStep;
                }
                if rel_decrease < opts.cost_tol && prev_cost.is_finite() {
                    outcome = LmOutcome::SmallCostDecrease;
                }
                break;
            }
            lambda *= LAMBDA_GROW;
        }

        if !stepped {
            // Damping saturated without progress: accept stationarity.
            outcome = LmOutcome::SmallStep;
            break;
        }
        if matches!(outcome, LmOutcome::SmallStep | LmOutcome::SmallCostDecrease) {
            break;
        }
    }

    Ok(LmReport {
        params: p,
        cost,
        grad_norm,
        iters,
        outcome,
    })
}

/// Infinity norm of the projected gradient: components pushing out of an
/// active bound are zeroed (KKT condition for box constraints).
fn projected_gradient_norm(p: &[f64], g: &[f64], bounds: &Bounds) -> f64 {
    let mut norm = 0.0_f64;
    for i in 0..p.len() {
        // Gradient of the cost is 2 Jᵀr; the factor 2 is irrelevant to the
        // stationarity test, so `g` is used directly.
        let gi = g[i];
        let at_lo = p[i] <= bounds.lo[i];
        let at_hi = p[i] >= bounds.hi[i];
        // Descent direction is -g: at a lower bound only positive -g (i.e.
        // negative g) is blocked... careful: at lower bound, feasible moves
        // have d >= 0, so a stationary point requires g >= 0 there.
        let effective = if at_lo {
            gi.min(0.0) // violation only if gradient says "decrease further"
        } else if at_hi {
            gi.max(0.0)
        } else {
            gi
        };
        norm = norm.max(effective.abs());
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CurveFit;

    #[test]
    fn recovers_linear_parameters() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 2.0).collect();
        let fit = CurveFit::new(xs, ys, 2, |x, p| p[0] * x + p[1]);
        let rep = levenberg_marquardt(&fit, &[0.0, 0.0], &Bounds::free(2), &LmOptions::default())
            .unwrap();
        assert!((rep.params[0] - 3.0).abs() < 1e-6, "{rep:?}");
        assert!((rep.params[1] - 2.0).abs() < 1e-6, "{rep:?}");
        assert!(rep.cost < 1e-12);
    }

    #[test]
    fn recovers_exponential_decay() {
        let xs: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * (-0.7 * x).exp() + 1.0).collect();
        let fit = CurveFit::new(xs, ys, 3, |x, p| p[0] * (-p[1] * x).exp() + p[2]);
        let rep = levenberg_marquardt(
            &fit,
            &[1.0, 0.1, 0.0],
            &Bounds::free(3),
            &LmOptions::default(),
        )
        .unwrap();
        assert!((rep.params[0] - 5.0).abs() < 1e-4, "{rep:?}");
        assert!((rep.params[1] - 0.7).abs() < 1e-5, "{rep:?}");
        assert!((rep.params[2] - 1.0).abs() < 1e-4, "{rep:?}");
    }

    #[test]
    fn respects_nonnegativity() {
        // Best unconstrained slope is negative; constrained must pin at 0.
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![4.0, 3.0, 2.0, 1.0];
        let fit = CurveFit::new(xs, ys, 2, |x, p| p[0] * x + p[1]);
        let rep = levenberg_marquardt(
            &fit,
            &[1.0, 1.0],
            &Bounds::nonnegative(2),
            &LmOptions::default(),
        )
        .unwrap();
        assert!(
            rep.params[0].abs() < 1e-8,
            "slope should be pinned at 0: {rep:?}"
        );
        assert!(rep.params[0] >= 0.0 && rep.params[1] >= 0.0);
        // With slope 0 the best intercept is the mean (2.5).
        assert!((rep.params[1] - 2.5).abs() < 1e-6, "{rep:?}");
    }

    #[test]
    fn paper_performance_model_shape() {
        // T(n) = a/n^c + b n + d with the paper's positivity constraints;
        // noiseless synthetic data must be recovered to high accuracy.
        let (a, b, c, d) = (1500.0_f64, 0.002_f64, 1.0_f64, 5.0_f64);
        let ns: [f64; 7] = [16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];
        let ys: Vec<f64> = ns.iter().map(|&n| a / n.powf(c) + b * n + d).collect();
        let fit = CurveFit::new(ns.to_vec(), ys, 4, |n, p| {
            p[0] / n.powf(p[2]) + p[1] * n + p[3]
        });
        let rep = levenberg_marquardt(
            &fit,
            &[100.0, 0.0, 0.8, 1.0],
            &Bounds::nonnegative(4),
            &LmOptions {
                max_iters: 500,
                ..LmOptions::default()
            },
        )
        .unwrap();
        // The surface is flat in (a, c) jointly; require excellent fit rather
        // than exact parameter recovery (the paper makes the same point).
        let preds = fit.predictions(&rep.params);
        for (p, y) in preds.iter().zip(fit.ys()) {
            assert!((p - y).abs() / y < 1e-3, "{rep:?}");
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let fit = CurveFit::new(vec![1.0], vec![1.0], 2, |x, p| p[0] * x + p[1]);
        let err = levenberg_marquardt(&fit, &[0.0], &Bounds::free(2), &LmOptions::default());
        assert!(matches!(err, Err(LsqError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_model_detected() {
        let fit = CurveFit::new(vec![1.0, 2.0], vec![1.0, 2.0], 1, |_x, p| (p[0]).ln());
        // ln(0) at the projected start = -inf.
        let err = levenberg_marquardt(&fit, &[0.0], &Bounds::nonnegative(1), &LmOptions::default());
        assert!(matches!(err, Err(LsqError::NonFiniteModel)));
    }

    #[test]
    fn zero_residual_start_converges_immediately() {
        let fit = CurveFit::new(vec![1.0, 2.0], vec![2.0, 4.0], 1, |x, p| p[0] * x);
        let rep =
            levenberg_marquardt(&fit, &[2.0], &Bounds::free(1), &LmOptions::default()).unwrap();
        assert_eq!(rep.outcome, LmOutcome::GradientConverged);
        assert!(rep.cost < 1e-20);
    }
}
