#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== differential fuzz (capped) =="
# A short hunt on top of the deterministic tier-1 suite. The fixed start
# seed keeps this gate deterministic while covering seeds the suite and
# corpus do not.
./target/release/testkit fuzz --seeds 40 --start 0xC1C1C1C1

echo "CI OK"
