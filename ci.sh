#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
# The pedantic trio (float_cmp, cast_possible_truncation, indexing_slicing)
# stays at warn level in [workspace.lints] so `cargo clippy` shows it, but
# hslb-lint is the enforcing gate for those hazards (it understands the
# workspace's tolerance vocabulary and suppression grammar), so CI does not
# hard-fail on them here. Later -A flags override the earlier -D.
cargo clippy --workspace --all-targets -- -D warnings \
  -A clippy::float_cmp -A clippy::cast_possible_truncation -A clippy::indexing_slicing

echo "== lint (hslb-lint) =="
cargo run --release -q -p hslb-lint -- --workspace

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== warm/cold equivalence =="
# Warm starts must never change answers: 500 seeded instances across all
# three backends, warm vs cold (see DESIGN.md § Warm starts). Release mode:
# the suite solves ~3000 MINLPs.
cargo test --release -q --test warm_cold_equivalence

echo "== sparse/dense equivalence =="
# The sparse numerical core is an implementation detail: forcing either
# backend may change work counters, never answers. 530 seeded instances
# across LP / netlib-LP / NLP / all three MINLP backends, plus a pinned
# pivot/Newton envelope (see DESIGN.md § Sparse core).
cargo test --release -q --test sparse_dense_equivalence

echo "== serve equivalence =="
# The serving layer must never change answers: 500 seeded instances solved
# cold and through the daemon (cache replay, warm-seeded re-solves, batch
# coalescing) must agree bit-for-bit (see DESIGN.md § Serve).
cargo test --release -q --test serve_equivalence

echo "== serve soak =="
# Concurrency discipline: 8 client threads x 200 mixed requests against one
# live server; totals and cache state must land on the same deterministic
# envelope every run.
cargo test --release -q --test serve_soak

echo "== sparse speedup (hslb-perf --speedup) =="
# Wall-clock gate: the n=1000 netlib-style LP must solve at least 5x
# faster on the sparse basis factorization than on the dense oracle. The
# observed ratio is ~25x; 5x leaves room for machine noise.
./target/release/hslb-perf --speedup

echo "== perf counters (hslb-perf --smoke) =="
# Counter-based perf-regression gate: re-runs the pinned solver suite and
# diffs its deterministic work counters against the committed
# BENCH_solver.json baseline; a failure names the counter that regressed
# and by how much (see DESIGN.md § Observability).
./target/release/hslb-perf --smoke

echo "== mpc newton gate (hslb-perf --mpc-gate) =="
# Counter gate for the Mehrotra predictor-corrector barrier: the pinned
# E7 nlp-bnb solve must spend <= 60% of the legacy fixed-μ schedule's
# 25,848 Newton iterations (observed ~4x cut; the floor catches any
# regression back toward the fixed schedule's per-node cost).
./target/release/hslb-perf --mpc-gate

echo "== serve throughput (hslb-perf --serve-qps) =="
# Wall-clock gate: mixed cheap traffic (pings + verbatim cache replays)
# through the threaded server must sustain >= 1000 queries/sec. Observed
# ~100x that; the floor only catches gross serialization regressions.
./target/release/hslb-perf --serve-qps

echo "== differential fuzz (capped) =="
# A short hunt on top of the deterministic tier-1 suite. The fixed start
# seed keeps this gate deterministic while covering seeds the suite and
# corpus do not.
./target/release/testkit fuzz --seeds 40 --start 0xC1C1C1C1

echo "== wire fuzz =="
# The serving wire front gets its own deeper sweep: 1500 generated
# envelopes plus corrupted-frame probes per case (truncation, byte flips,
# length-prefix lies) must never wedge, crash, or desync the server. This
# sweep is what caught the non-finite Cholesky regularization spin.
./target/release/testkit fuzz --layer wire --seeds 1500

echo "CI OK"
