//! Table-I layout model invariants, cross-checked against the monotone
//! oracle on randomized component surfaces.

use hslb::{
    build_layout_model, layout1_oracle, layout_predicted_times, solve_model, CesmModelSpec,
    ComponentSpec, Layout, SolverBackend,
};
use hslb_minlp::MinlpStatus;
use hslb_perfmodel::PerfModel;
use hslb_rng::Rng;

fn spec(params: [(f64, f64); 4], total: i64) -> CesmModelSpec {
    let comp = |k: usize, name: &str| {
        ComponentSpec::new(name, PerfModel::amdahl(params[k].0, params[k].1), 1, total)
    };
    CesmModelSpec {
        ice: comp(0, "ice"),
        lnd: comp(1, "lnd"),
        atm: comp(2, "atm"),
        ocn: comp(3, "ocn"),
        total_nodes: total,
        tsync: None,
    }
}

#[test]
fn objective_equals_layout_formula_for_all_layouts() {
    let s = spec(
        [(800.0, 1.0), (150.0, 0.2), (3000.0, 4.0), (1500.0, 2.0)],
        48,
    );
    for layout in Layout::ALL {
        let model = build_layout_model(&s, layout);
        let sol = solve_model(&model.problem, SolverBackend::OuterApproximation);
        assert_eq!(sol.status, MinlpStatus::Optimal, "{layout:?}");
        let alloc = model.allocation(&sol);
        let times = layout_predicted_times(&s, layout, &alloc);
        assert!(
            (sol.objective - times.total).abs() < 1e-3 * times.total,
            "{layout:?}: objective {} vs formula {}",
            sol.objective,
            times.total
        );
    }
}

#[test]
fn layout_formulas_dominate_pointwise() {
    // For any FIXED allocation the closed forms order as
    // hybrid <= sequential-atm-group <= fully-sequential:
    // max(max(i,l)+a, o) <= max(i+l+a, o) <= i+l+a+o.
    // (The *optima* need not order this way — each layout has different
    // node-sharing constraints; e.g. layout 3 gives every component all N
    // nodes, which a small ocean-bound machine can prefer.)
    let s = spec([(400.0, 0.5), (90.0, 0.1), (2000.0, 2.0), (900.0, 1.0)], 96);
    for alloc in [
        hslb::CesmAllocation {
            ice: 10,
            lnd: 6,
            atm: 16,
            ocn: 20,
        },
        hslb::CesmAllocation {
            ice: 30,
            lnd: 30,
            atm: 60,
            ocn: 36,
        },
        hslb::CesmAllocation {
            ice: 1,
            lnd: 1,
            atm: 2,
            ocn: 94,
        },
    ] {
        let t1 = layout_predicted_times(&s, Layout::Hybrid, &alloc).total;
        let t2 = layout_predicted_times(&s, Layout::SequentialAtmGroup, &alloc).total;
        let t3 = layout_predicted_times(&s, Layout::FullySequential, &alloc).total;
        assert!(
            t1 <= t2 + 1e-9 && t2 <= t3 + 1e-9,
            "{alloc:?}: {t1} {t2} {t3}"
        );
    }
}

#[test]
fn ticelnd_epigraph_is_tight_at_optimum() {
    let s = spec(
        [(800.0, 1.0), (150.0, 0.2), (3000.0, 4.0), (1500.0, 2.0)],
        64,
    );
    let model = build_layout_model(&s, Layout::Hybrid);
    let sol = solve_model(&model.problem, SolverBackend::OuterApproximation);
    assert_eq!(sol.status, MinlpStatus::Optimal);
    let ticelnd = sol.x[model.ticelnd_var.expect("hybrid model has T_icelnd")];
    let alloc = model.allocation(&sol);
    let times = layout_predicted_times(&s, Layout::Hybrid, &alloc);
    // T_icelnd must equal max(T_i, T_l) at the optimum (within solver tol):
    // if it were loose, T could shrink, contradicting optimality — unless
    // the ocean dominates, in which case it only needs to be <= T - T_a.
    let max_il = times.ice.max(times.lnd);
    if times.total > times.ocn + 1e-6 {
        assert!(
            (ticelnd - max_il).abs() < 1e-3 * max_il.max(1.0),
            "{ticelnd} vs {max_il}"
        );
    } else {
        assert!(ticelnd + times.atm <= times.total + 1e-3);
    }
}

/// Random monotone component surfaces: branch-and-bound must match the
/// independent monotone oracle on layout 1.
#[test]
fn bnb_matches_monotone_oracle() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0xab);
    for case in 0..10 {
        let s = spec(
            [
                (rng.f64_range(100.0, 5000.0), rng.f64_range(0.0, 10.0)),
                (rng.f64_range(50.0, 2000.0), rng.f64_range(0.0, 5.0)),
                (rng.f64_range(500.0, 20_000.0), rng.f64_range(0.0, 20.0)),
                (rng.f64_range(200.0, 8000.0), rng.f64_range(0.0, 15.0)),
            ],
            rng.i64_range(12, 79),
        );
        let (oracle_alloc, oracle_t) = layout1_oracle(&s).expect("monotone spec");
        let model = build_layout_model(&s, Layout::Hybrid);
        let sol = solve_model(&model.problem, SolverBackend::OuterApproximation);
        assert_eq!(sol.status, MinlpStatus::Optimal, "case {case}");
        assert!(
            sol.objective <= oracle_t * (1.0 + 1e-4) + 1e-6,
            "case {case}: bnb {} worse than oracle {} ({:?})",
            sol.objective,
            oracle_t,
            oracle_alloc
        );
        // The oracle is optimal too, so the bound works both ways.
        assert!(
            oracle_t <= sol.objective * (1.0 + 1e-4) + 1e-6,
            "case {case}: oracle {} worse than bnb {}",
            oracle_t,
            sol.objective
        );
    }
}

/// The solver's allocation always satisfies the structural constraints.
#[test]
fn allocations_satisfy_structure() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0xbb);
    for case in 0..10 {
        let aa = rng.f64_range(500.0, 20_000.0);
        let ao = rng.f64_range(200.0, 8000.0);
        let total = rng.i64_range(12, 63);
        let s = spec([(300.0, 1.0), (100.0, 0.5), (aa, 2.0), (ao, 1.0)], total);
        let model = build_layout_model(&s, Layout::Hybrid);
        let sol = solve_model(&model.problem, SolverBackend::OuterApproximation);
        assert_eq!(sol.status, MinlpStatus::Optimal, "case {case}");
        let a = model.allocation(&sol);
        assert!(a.ice + a.lnd <= a.atm, "case {case}: {a:?}");
        assert!(a.atm + a.ocn <= total as u64, "case {case}: {a:?}");
        assert!(
            a.ice >= 1 && a.lnd >= 1 && a.atm >= 1 && a.ocn >= 1,
            "case {case}"
        );
    }
}
