//! Served answers are a cache/warm-start *optimization*, never a different
//! solver: for 500 seeded instances, the daemon's answer must match a
//! fresh cold solve of the same spec — cold on first contact, warm-seeded
//! after coefficient drift, and replayed verbatim on exact repeats.
//!
//! Each instance is queried three times through the in-process [`Handle`]:
//!
//! 1. cold (empty cache) — differentially compared against a fresh
//!    un-served `solve_nlp_bnb` of the same spec;
//! 2. with drifted coefficients (same structure) — must hit the cache
//!    (`cache_hits`), re-solve warm-seeded (`warm_seeded`, and the solver
//!    must actually accept the root seed: `warm_start_hits`), and again
//!    match a fresh cold solve of the drifted spec;
//! 3. the drifted spec verbatim — must replay from cache with zero new
//!    solver work and the exact same answer bytes-for-bytes.

use hslb::{build_flat_model, FlatSpec};
use hslb_minlp::{
    presolve, solve_nlp_bnb, MinlpOptions, MinlpSolution, MinlpStatus, PresolveOutcome,
};
use hslb_obs::SolveStats;
use hslb_rng::Rng;
use hslb_serve::protocol::{Body, Request, Source};
use hslb_serve::{EngineOptions, Server, ServerOptions};
use hslb_testkit::check::backend_diff_tol;
use hslb_testkit::gen;

/// Mirrors the shard's solve path (same presolve depth, same backend),
/// minus every serving layer: the ground truth a served reply must match.
fn cold_reference(spec: &FlatSpec) -> MinlpSolution {
    let model = build_flat_model(spec);
    let mut reduced = model.problem.clone();
    match presolve(&mut reduced, 8) {
        PresolveOutcome::Infeasible => MinlpSolution::infeasible(SolveStats::default()),
        PresolveOutcome::Reduced { .. } => solve_nlp_bnb(&reduced, &MinlpOptions::default()),
    }
}

struct Alloc {
    status: MinlpStatus,
    nodes: Vec<u64>,
    objective: f64,
    work: SolveStats,
    source: Source,
}

fn alloc(body: &Body, context: &str) -> Alloc {
    match body {
        Body::Allocation {
            status,
            nodes,
            objective,
            work,
            source,
            ..
        } => Alloc {
            status: *status,
            nodes: nodes.clone(),
            objective: *objective,
            work: *work,
            source: *source,
        },
        other => panic!("{context}: expected an allocation, got {other:?}"),
    }
}

fn assert_matches_reference(case: u64, spec: &FlatSpec, served: &Alloc, what: &str) {
    let reference = cold_reference(spec);
    assert_eq!(
        served.status, reference.status,
        "case {case} ({what}): served status diverged from a fresh cold solve"
    );
    if reference.status != MinlpStatus::Optimal {
        return;
    }
    let model = build_flat_model(spec);
    let dim = model.problem.relaxation().num_vars() + spec.components.len();
    let tol = backend_diff_tol(dim, 1.0);
    assert!(
        (served.objective - reference.objective).abs() <= tol * reference.objective.abs().max(1.0),
        "case {case} ({what}): served objective {} vs cold reference {}",
        served.objective,
        reference.objective
    );
    let used: i64 = served.nodes.iter().map(|&n| n as i64).sum();
    assert!(
        used <= spec.total_nodes && served.nodes.iter().all(|&n| n >= 1),
        "case {case} ({what}): served allocation {:?} violates the budget {}",
        served.nodes,
        spec.total_nodes
    );
}

#[test]
fn served_answers_match_fresh_cold_solves_across_500_instances() {
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            shards: 4,
            // Room for all 500 structures: this battery pins warm reuse,
            // so eviction noise is not welcome here (eviction behavior is
            // pinned by the cache unit tests).
            cache_cap: 256,
            solver: MinlpOptions::default(),
        },
        ..ServerOptions::default()
    });
    let handle = server.handle();

    let mut rng = Rng::new(0x5E12_7EED);
    let mut optimal_cases = 0u64;
    let mut seed_accepted_cases = 0u64;
    let mut delta_sum = hslb_obs::ServeStats::default();
    for case in 0..500u64 {
        let size = (case % 6) as u32 + 1;
        let spec = gen::flat_spec(&mut rng, size);

        let first = handle.call(Request::Solve {
            spec: spec.clone(),
            budget: None,
        });
        delta_sum.merge(&first.served);
        let cold = alloc(&first.body, "first query");
        // The generator draws structures from a small space (k, total), so
        // a later case can land on an already-warm structure: first contact
        // is Cold on a genuine miss, Warm when an earlier case's structure
        // recurs. Either way it must solve (never replay: coefficients are
        // fresh draws) and match the un-served reference.
        assert_eq!(first.served.solves, 1, "case {case}: first query solves");
        assert!(
            (cold.source == Source::Cold) == (first.served.cache_hits == 0),
            "case {case}: source/counter mismatch on first contact"
        );
        assert_matches_reference(case, &spec, &cold, "cold");
        if cold.status != MinlpStatus::Optimal {
            continue;
        }
        optimal_cases += 1;

        // Same structure, drifted coefficients — the fit moved between
        // queries. Must re-solve warm-seeded from the cached solution.
        let mut drifted = spec.clone();
        let drift = 1.0 + 0.004 * ((case % 5) as f64 + 1.0);
        for c in &mut drifted.components {
            c.model.a *= drift;
            c.model.d *= 2.0 - drift;
        }
        let second = handle.call(Request::Solve {
            spec: drifted.clone(),
            budget: None,
        });
        delta_sum.merge(&second.served);
        let warm = alloc(&second.body, "drifted re-query");
        assert_eq!(
            warm.source,
            Source::Warm,
            "case {case}: drifted re-query must find the cached structure"
        );
        assert_eq!(
            second.served.cache_hits, 1,
            "case {case}: drifted re-query must count a cache hit"
        );
        assert_eq!(
            second.served.warm_seeded, 1,
            "case {case}: drifted re-query must be warm-seeded"
        );
        assert_eq!(second.served.solves, 1);
        if warm.work.warm_start_hits > 0 {
            seed_accepted_cases += 1;
        }
        assert_matches_reference(case, &drifted, &warm, "warm");

        // Exact repeat of the drifted spec: replay, no new solver work.
        let third = handle.call(Request::Solve {
            spec: drifted,
            budget: None,
        });
        delta_sum.merge(&third.served);
        let replayed = alloc(&third.body, "verbatim re-query");
        assert_eq!(third.served.cache_hits, 1, "case {case}: replay is a hit");
        assert_eq!(third.served.solves, 0, "case {case}: replay never solves");
        assert_eq!(replayed.source, Source::Cache);
        assert_eq!(replayed.nodes, warm.nodes, "case {case}: replay drifted");
        assert!(
            (replayed.objective - warm.objective).abs() == 0.0,
            "case {case}: replayed objective must be bit-identical"
        );
        assert_eq!(
            replayed.work, warm.work,
            "case {case}: replay returns the producing solve's counters"
        );
    }

    assert!(
        optimal_cases >= 450,
        "generator regression: only {optimal_cases}/500 instances solved optimal"
    );
    // The warm path must actually engage, not silently fall back cold.
    assert!(
        seed_accepted_cases * 10 >= optimal_cases * 9,
        "root warm seeds accepted on only {seed_accepted_cases}/{optimal_cases} drifted re-queries"
    );

    let (serve, solver) = handle.stats();
    assert_eq!(
        serve, delta_sum,
        "aggregate counters must equal the sum of per-reply deltas"
    );
    assert_eq!(serve.queries, 500 + 2 * optimal_cases);
    assert_eq!(serve.solves, 500 + optimal_cases, "replays never solve");
    assert!(
        serve.cache_hits >= 2 * optimal_cases,
        "every drifted re-query and replay is a hit (plus recurring structures)"
    );
    assert!(serve.warm_seeded >= optimal_cases);
    assert_eq!(serve.shed, 0, "nothing shed in a sequential battery");
    assert!(solver.warm_start_hits >= seed_accepted_cases);
}
