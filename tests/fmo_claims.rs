//! Title-paper (SC'12) claims on the FMO substrate.

use hslb_fmo_sim::{generate_cluster, FmoSimulator};
use hslb_rng::seeds;

#[test]
fn hslb_wins_grow_with_heterogeneity() {
    // The more diverse the fragment sizes, the larger HSLB's win over
    // uniform static groups — the paper's core motivation.
    let mut ratios = Vec::new();
    for &het in &[0.0, 0.5, 1.0] {
        let cluster = generate_cluster(64, het, seeds::FMO);
        let mut sim = FmoSimulator::new(cluster, 64 * 6, seeds::FMO);
        let (_, hslb) = sim.run_hslb(5).expect("feasible");
        let uniform = sim.execute_uniform(64);
        ratios.push(uniform.monomer_time / hslb.monomer_time);
    }
    assert!(
        ratios[0] < 1.3,
        "homogeneous case should be near a tie: {ratios:?}"
    );
    assert!(ratios[1] > ratios[0], "{ratios:?}");
    assert!(ratios[2] > ratios[1], "{ratios:?}");
    assert!(
        ratios[2] > 2.0,
        "heterogeneous win should be substantial: {ratios:?}"
    );
}

#[test]
fn hslb_beats_dynamic_in_few_large_tasks_regime() {
    // "In the special cases of a few large tasks of diverse size, DLB
    // algorithms are not appropriate" (§I): dynamic scheduling cannot give
    // the dominating fragment a bigger group than the uniform group size,
    // so the critical path stays long. Many small groups make this sharp.
    let cluster = generate_cluster(24, 1.0, 7);
    let mut sim = FmoSimulator::new(cluster, 24 * 8, 7);
    let (_, hslb) = sim.run_hslb(5).expect("feasible");
    let dynamic = sim.execute_dynamic(12); // per-group 16 nodes
    assert!(
        hslb.monomer_time < dynamic.monomer_time,
        "HSLB {} vs dynamic {}",
        hslb.monomer_time,
        dynamic.monomer_time
    );
}

#[test]
fn hslb_makespan_approaches_the_physical_floor() {
    // A fragment cannot run faster than on its maximum useful node count,
    // so `max_f T_f(n_f^max)` lower-bounds any schedule. HSLB should land
    // within ~1.5x of that floor (noise + node scarcity included). Note
    // per-fragment "imbalance" is not meaningful here: a 3-atom fragment on
    // its minimum of 1 node is orders of magnitude faster than the giant
    // fragments whatever the allocator does.
    let cluster = generate_cluster(48, 0.8, 99);
    let mut sim = FmoSimulator::new(cluster.clone(), 48 * 6, 99);
    let (_, hslb) = sim.run_hslb(5).expect("feasible");
    let floor = cluster
        .iter()
        .map(|f| f.true_time(f.max_useful_nodes() as u64))
        .fold(0.0f64, f64::max);
    assert!(
        hslb.monomer_time <= 1.5 * floor,
        "makespan {} vs physical floor {}",
        hslb.monomer_time,
        floor
    );
}

#[test]
fn allocation_never_exceeds_fragment_usefulness() {
    let cluster = generate_cluster(32, 0.9, 5);
    let mut sim = FmoSimulator::new(cluster.clone(), 32 * 12, 5);
    let (alloc, _) = sim.run_hslb(5).expect("feasible");
    for (f, &n) in cluster.iter().zip(&alloc.nodes) {
        assert!(
            n as i64 <= f.max_useful_nodes(),
            "fragment {} ({} atoms) was given {} nodes",
            f.id,
            f.atoms,
            n
        );
    }
}

#[test]
fn dimer_step_scales_with_machine() {
    let cluster = generate_cluster(32, 0.5, 5);
    let mut small = FmoSimulator::new(cluster.clone(), 64, 5);
    let mut large = FmoSimulator::new(cluster, 256, 5);
    let d_small = small.execute_uniform(8).dimer_time;
    let d_large = large.execute_uniform(8).dimer_time;
    assert!(
        (d_small / d_large - 4.0).abs() < 0.01,
        "{d_small} vs {d_large}"
    );
}
