//! Failure-injection tests: the pipeline must degrade cleanly, never panic,
//! when the workload misbehaves.

use hslb::pipeline::{run_hslb, ExecutionReport, HslbError, Workload};
use hslb::{AllowedNodes, CesmAllocation, Layout, SolverBackend};
use hslb_minlp::MinlpOptions;
use hslb_perfmodel::PerfModel;

/// A workload wrapper that corrupts benchmark results.
struct Corrupting<F: FnMut(usize, u64, f64) -> f64> {
    models: [PerfModel; 4],
    total: u64,
    corrupt: F,
}

impl<F: FnMut(usize, u64, f64) -> f64> Workload for Corrupting<F> {
    fn total_nodes(&self) -> u64 {
        self.total
    }

    fn benchmark(&mut self, component: usize, nodes: u64) -> f64 {
        let honest = self.models[component].eval(nodes as f64);
        (self.corrupt)(component, nodes, honest)
    }

    fn allowed(&self, _component: usize) -> AllowedNodes {
        AllowedNodes::Range {
            min: 1,
            max: self.total as i64,
        }
    }

    fn execute(&mut self, _layout: Layout, alloc: &CesmAllocation) -> ExecutionReport {
        let ice = self.models[0].eval(alloc.ice as f64);
        let lnd = self.models[1].eval(alloc.lnd as f64);
        let atm = self.models[2].eval(alloc.atm as f64);
        let ocn = self.models[3].eval(alloc.ocn as f64);
        ExecutionReport {
            ice,
            lnd,
            atm,
            ocn,
            total: (ice.max(lnd) + atm).max(ocn),
        }
    }
}

fn models() -> [PerfModel; 4] {
    [
        PerfModel::amdahl(7774.0, 11.8),
        PerfModel::amdahl(1484.0, 1.94),
        PerfModel::amdahl(27_180.0, 44.0),
        PerfModel::amdahl(7754.0, 41.8),
    ]
}

fn counts() -> [Vec<u64>; 4] {
    let samples = hslb_perfmodel::ScalingData::suggest_node_counts(2, 120, 5);
    [samples.clone(), samples.clone(), samples.clone(), samples]
}

#[test]
fn nan_benchmarks_surface_as_fit_error() {
    let mut w = Corrupting {
        models: models(),
        total: 128,
        corrupt: |c, _n, t| if c == 2 { f64::NAN } else { t },
    };
    let err = run_hslb(
        &mut w,
        &counts(),
        Layout::Hybrid,
        SolverBackend::OuterApproximation,
        &MinlpOptions::default(),
    );
    assert!(matches!(err, Err(HslbError::Fit(_))), "{err:?}");
}

#[test]
fn wildly_noisy_benchmarks_still_complete() {
    // ±40% deterministic corruption: the fit quality craters, but the
    // pipeline must still deliver a structurally valid allocation.
    let mut flip = false;
    let mut w = Corrupting {
        models: models(),
        total: 128,
        corrupt: move |_c, _n, t| {
            flip = !flip;
            if flip {
                t * 1.4
            } else {
                t * 0.6
            }
        },
    };
    let out = run_hslb(
        &mut w,
        &counts(),
        Layout::Hybrid,
        SolverBackend::OuterApproximation,
        &MinlpOptions::default(),
    )
    .expect("noisy but finite data must still solve");
    let a = out.allocation;
    assert!(a.ice + a.lnd <= a.atm);
    assert!(a.atm + a.ocn <= 128);
}

#[test]
fn constant_benchmarks_still_complete() {
    // A component that refuses to scale (flat timings) fits to a pure
    // serial model; the solver should then starve it of nodes.
    let mut w = Corrupting {
        models: models(),
        total: 128,
        corrupt: |c, _n, t| if c == 1 { 30.0 } else { t },
    };
    let out = run_hslb(
        &mut w,
        &counts(),
        Layout::Hybrid,
        SolverBackend::OuterApproximation,
        &MinlpOptions::default(),
    )
    .expect("flat data is fittable (a=b=0)");
    // The land fit must be ~pure-serial and the allocation small.
    assert!(out.fits[1].model.a < 5.0, "{}", out.fits[1].model);
    assert!(out.allocation.lnd <= 8, "{:?}", out.allocation);
}

#[test]
fn infeasible_domain_surfaces_cleanly() {
    // An ocean that only accepts counts larger than the machine.
    struct Impossible;
    impl Workload for Impossible {
        fn total_nodes(&self) -> u64 {
            64
        }
        fn benchmark(&mut self, component: usize, nodes: u64) -> f64 {
            models()[component].eval(nodes as f64)
        }
        fn allowed(&self, component: usize) -> AllowedNodes {
            if component == 3 {
                AllowedNodes::set([512, 1024]) // cannot fit in 64 nodes
            } else {
                AllowedNodes::Range { min: 1, max: 64 }
            }
        }
        fn execute(&mut self, _layout: Layout, _alloc: &CesmAllocation) -> ExecutionReport {
            unreachable!("infeasible problems are caught before execution")
        }
    }
    let err = run_hslb(
        &mut Impossible,
        &counts(),
        Layout::Hybrid,
        SolverBackend::OuterApproximation,
        &MinlpOptions::default(),
    );
    assert!(matches!(err, Err(HslbError::Infeasible)), "{err:?}");
}

#[test]
fn tiny_machines_are_rejected_by_the_model_builder() {
    // build_layout_model panics below 4 nodes; the pipeline never reaches it
    // because Workload::total_nodes is the source — verify the panic message
    // is the intentional assertion, not an arithmetic error.
    let result = std::panic::catch_unwind(|| {
        let spec = hslb::CesmModelSpec {
            ice: hslb::ComponentSpec::new("ice", models()[0], 1, 4),
            lnd: hslb::ComponentSpec::new("lnd", models()[1], 1, 4),
            atm: hslb::ComponentSpec::new("atm", models()[2], 1, 4),
            ocn: hslb::ComponentSpec::new("ocn", models()[3], 1, 4),
            total_nodes: 3,
            tsync: None,
        };
        hslb::build_layout_model(&spec, Layout::Hybrid)
    });
    assert!(result.is_err());
}
