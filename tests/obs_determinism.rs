//! Determinism property tests for the `hslb-obs` counters (satellite of the
//! observability layer; see DESIGN.md § Observability).
//!
//! The perf-regression gate (`hslb-perf --smoke`) is only sound if the
//! counters are a pure function of the problem instance. Two properties are
//! pinned over seeded random instances:
//!
//! 1. **Repeatability** — solving the same instance twice yields identical
//!    `SolveStats` (and identical LP pivot / Newton iteration counts for the
//!    continuous sub-solvers).
//! 2. **Serial/parallel parity** — the fork-join solver's deterministic
//!    replay merge reconstructs the serial depth-first traversal, so a
//!    completed parallel solve returns the serial solver's counters,
//!    objective, and incumbent vector bit-for-bit at *any* thread count
//!    (see `hslb_minlp::parallel` module docs). The multithreaded stress
//!    tests below cross-validate the `nondet-*` lint rules dynamically:
//!    the static rules say solver state never flows through unordered
//!    containers or ambient entropy, and these tests observe the
//!    consequence.

use hslb_minlp::{solve_nlp_bnb, solve_oa_bnb, solve_parallel_bnb, MinlpOptions, NodeSelection};
use hslb_nlp::BarrierOptions;
use hslb_rng::Rng;
use hslb_testkit::gen;

const SEEDS: u64 = 25;

#[test]
fn lp_pivot_counts_are_repeatable() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0001 ^ seed);
        let inst = gen::lp_instance(&mut rng, 5);
        let a = hslb_lp::solve(&inst.lp);
        let b = hslb_lp::solve(&inst.lp);
        assert_eq!(a.iterations, b.iterations, "seed {seed}");
        assert_eq!(a.status, b.status, "seed {seed}");
    }
}

#[test]
fn nlp_newton_counts_are_repeatable() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0002 ^ seed);
        let inst = gen::nlp_instance(&mut rng, 5);
        let opts = BarrierOptions::default();
        let a = hslb_nlp::solve_with(&inst.problem, &opts);
        let b = hslb_nlp::solve_with(&inst.problem, &opts);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.newton_iters, b.newton_iters, "seed {seed}");
                assert_eq!(a.status, b.status, "seed {seed}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("seed {seed}: outcome diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn minlp_stats_are_repeatable_across_backends() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0003 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 5);
        type Solver = fn(&hslb_minlp::MinlpProblem, &MinlpOptions) -> hslb_minlp::MinlpSolution;
        for (name, solve) in [
            ("nlp_bnb", solve_nlp_bnb as Solver),
            ("oa", solve_oa_bnb as Solver),
        ] {
            let opts = MinlpOptions::default();
            let a = solve(&inst.problem, &opts);
            let b = solve(&inst.problem, &opts);
            assert_eq!(a.stats, b.stats, "seed {seed} backend {name}");
            assert_eq!(a.status, b.status, "seed {seed} backend {name}");
        }
    }
}

#[test]
fn parallel_one_thread_matches_serial_depth_first_stats() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0004 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 6);
        let serial = solve_nlp_bnb(
            &inst.problem,
            &MinlpOptions {
                node_selection: NodeSelection::DepthFirst,
                ..Default::default()
            },
        );
        let parallel = solve_parallel_bnb(
            &inst.problem,
            &MinlpOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(serial.stats, parallel.stats, "seed {seed}");
        assert_eq!(serial.status, parallel.status, "seed {seed}");
        if serial.objective.is_finite() {
            assert!(
                (serial.objective - parallel.objective).abs() <= 1e-9,
                "seed {seed}: objectives diverged"
            );
        }
    }
}

/// Determinism stress: seeded instances at real thread counts. Every
/// completed multithreaded solve must replay the serial depth-first
/// traversal exactly — stats, status, objective bits, and the argmin
/// vector (tie-breaking among equal-objective candidates included).
#[test]
fn parallel_stress_any_thread_count_replays_serial() {
    const STRESS_SEEDS: u64 = 16;
    for seed in 0..STRESS_SEEDS {
        let mut rng = Rng::new(0xD0_0006 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 6);
        let serial = solve_nlp_bnb(
            &inst.problem,
            &MinlpOptions {
                node_selection: NodeSelection::DepthFirst,
                ..Default::default()
            },
        );
        for threads in [2usize, 4, 8] {
            let parallel = solve_parallel_bnb(
                &inst.problem,
                &MinlpOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                serial.stats, parallel.stats,
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                serial.status, parallel.status,
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                serial.objective.to_bits(),
                parallel.objective.to_bits(),
                "seed {seed} threads {threads}: objectives diverged"
            );
            assert_eq!(serial.x, parallel.x, "seed {seed} threads {threads}");
        }
    }
}

/// The E7 pinned instance (the perf gate's anchor workload) at real thread
/// counts: the replay contract must hold on the production-scale model,
/// not just on generator instances.
#[test]
fn parallel_stress_e7_pinned_instance() {
    use hslb::{build_layout_model, Layout};
    use hslb_bench::harness::true_spec;
    use hslb_bench::perf::E7_TOTAL_NODES;
    use hslb_cesm_sim::Scenario;

    let spec = true_spec(&Scenario::one_degree(E7_TOTAL_NODES));
    let model = build_layout_model(&spec, Layout::Hybrid);
    let serial = solve_nlp_bnb(
        &model.problem,
        &MinlpOptions {
            node_selection: NodeSelection::DepthFirst,
            ..Default::default()
        },
    );
    assert_eq!(serial.status, hslb_minlp::MinlpStatus::Optimal);
    for threads in [2usize, 4, 8] {
        let parallel = solve_parallel_bnb(
            &model.problem,
            &MinlpOptions {
                threads,
                ..Default::default()
            },
        );
        assert_eq!(serial.stats, parallel.stats, "threads {threads}");
        assert_eq!(
            serial.objective.to_bits(),
            parallel.objective.to_bits(),
            "threads {threads}"
        );
        assert_eq!(serial.x, parallel.x, "threads {threads}");
    }
}

#[test]
fn parallel_one_thread_repeatable() {
    // threads=1 is the deterministic configuration hslb-perf pins; two runs
    // must agree exactly (the multithreaded tree is allowed to vary).
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0005 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 5);
        let opts = MinlpOptions {
            threads: 1,
            ..Default::default()
        };
        let a = solve_parallel_bnb(&inst.problem, &opts);
        let b = solve_parallel_bnb(&inst.problem, &opts);
        assert_eq!(a.stats, b.stats, "seed {seed}");
    }
}
