//! Determinism property tests for the `hslb-obs` counters (satellite of the
//! observability layer; see DESIGN.md § Observability).
//!
//! The perf-regression gate (`hslb-perf --smoke`) is only sound if the
//! counters are a pure function of the problem instance. Two properties are
//! pinned over seeded random instances:
//!
//! 1. **Repeatability** — solving the same instance twice yields identical
//!    `SolveStats` (and identical LP pivot / Newton iteration counts for the
//!    continuous sub-solvers).
//! 2. **Serial/parallel parity** — the fork-join solver at `threads: 1`
//!    replays the serial depth-first traversal node for node, so its merged
//!    counters equal the serial solver's exactly.

use hslb_minlp::{solve_nlp_bnb, solve_oa_bnb, solve_parallel_bnb, MinlpOptions, NodeSelection};
use hslb_nlp::BarrierOptions;
use hslb_rng::Rng;
use hslb_testkit::gen;

const SEEDS: u64 = 25;

#[test]
fn lp_pivot_counts_are_repeatable() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0001 ^ seed);
        let inst = gen::lp_instance(&mut rng, 5);
        let a = hslb_lp::solve(&inst.lp);
        let b = hslb_lp::solve(&inst.lp);
        assert_eq!(a.iterations, b.iterations, "seed {seed}");
        assert_eq!(a.status, b.status, "seed {seed}");
    }
}

#[test]
fn nlp_newton_counts_are_repeatable() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0002 ^ seed);
        let inst = gen::nlp_instance(&mut rng, 5);
        let opts = BarrierOptions::default();
        let a = hslb_nlp::solve_with(&inst.problem, &opts);
        let b = hslb_nlp::solve_with(&inst.problem, &opts);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.newton_iters, b.newton_iters, "seed {seed}");
                assert_eq!(a.status, b.status, "seed {seed}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("seed {seed}: outcome diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn minlp_stats_are_repeatable_across_backends() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0003 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 5);
        type Solver = fn(&hslb_minlp::MinlpProblem, &MinlpOptions) -> hslb_minlp::MinlpSolution;
        for (name, solve) in [
            ("nlp_bnb", solve_nlp_bnb as Solver),
            ("oa", solve_oa_bnb as Solver),
        ] {
            let opts = MinlpOptions::default();
            let a = solve(&inst.problem, &opts);
            let b = solve(&inst.problem, &opts);
            assert_eq!(a.stats, b.stats, "seed {seed} backend {name}");
            assert_eq!(a.status, b.status, "seed {seed} backend {name}");
        }
    }
}

#[test]
fn parallel_one_thread_matches_serial_depth_first_stats() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0004 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 6);
        let serial = solve_nlp_bnb(
            &inst.problem,
            &MinlpOptions {
                node_selection: NodeSelection::DepthFirst,
                ..Default::default()
            },
        );
        let parallel = solve_parallel_bnb(
            &inst.problem,
            &MinlpOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(serial.stats, parallel.stats, "seed {seed}");
        assert_eq!(serial.status, parallel.status, "seed {seed}");
        if serial.objective.is_finite() {
            assert!(
                (serial.objective - parallel.objective).abs() <= 1e-9,
                "seed {seed}: objectives diverged"
            );
        }
    }
}

#[test]
fn parallel_one_thread_repeatable() {
    // threads=1 is the deterministic configuration hslb-perf pins; two runs
    // must agree exactly (the multithreaded tree is allowed to vary).
    for seed in 0..SEEDS {
        let mut rng = Rng::new(0xD0_0005 ^ seed);
        let inst = gen::minlp_instance(&mut rng, 5);
        let opts = MinlpOptions {
            threads: 1,
            ..Default::default()
        };
        let a = solve_parallel_bnb(&inst.problem, &opts);
        let b = solve_parallel_bnb(&inst.problem, &opts);
        assert_eq!(a.stats, b.stats, "seed {seed}");
    }
}
