//! Cross-validation of the three MINLP backends against each other and the
//! exhaustive oracle, including property-based instances.

use hslb_minlp::{
    encode_sets_as_binaries, solve_exhaustive, solve_nlp_bnb, solve_oa_bnb, solve_parallel_bnb,
    BranchRule, MinlpOptions, MinlpProblem, MinlpStatus, NodeSelection,
};
use hslb_nlp::{ConstraintFn, ScalarFn};
use hslb_rng::Rng;

/// Builds a K-component min-max allocation MINLP.
fn allocation(loads: &[(f64, f64)], cap: i64) -> MinlpProblem {
    let mut p = MinlpProblem::new();
    let vars: Vec<usize> = loads.iter().map(|_| p.add_int_var(0.0, 1, cap)).collect();
    let t = p.add_var(1.0, 0.0, 1e9);
    for (k, (&v, &(a, d))) in vars.iter().zip(loads).enumerate() {
        p.add_constraint(
            ConstraintFn::new(format!("t{k}"))
                .nonlinear_term(v, ScalarFn::perf_model(a, 0.0, 1.0))
                .linear_term(t, -1.0)
                .with_constant(d),
        );
    }
    let mut c = ConstraintFn::new("cap").with_constant(-(cap as f64));
    for &v in &vars {
        c = c.linear_term(v, 1.0);
    }
    p.add_constraint(c);
    p
}

#[test]
fn three_backends_and_oracle_agree() {
    let p = allocation(&[(300.0, 2.0), (120.0, 0.5), (75.0, 1.0)], 17);
    let opts = MinlpOptions::default();
    let oa = solve_oa_bnb(&p, &opts);
    let nlp = solve_nlp_bnb(&p, &opts);
    let par = solve_parallel_bnb(&p, &opts);
    let oracle = solve_exhaustive(&p, 1_000_000).expect("enumerable");
    for (name, sol) in [("oa", &oa), ("nlp", &nlp), ("par", &par)] {
        assert_eq!(sol.status, MinlpStatus::Optimal, "{name}");
        assert!(
            (sol.objective - oracle.objective).abs() < 1e-3,
            "{name}: {} vs oracle {}",
            sol.objective,
            oracle.objective
        );
        assert!(p.is_feasible(&sol.x, 1e-5), "{name} point infeasible");
    }
}

#[test]
fn branch_rules_and_node_selection_reach_same_optimum() {
    let p = allocation(&[(500.0, 1.0), (250.0, 3.0), (90.0, 0.2)], 23);
    let mut objs = Vec::new();
    for rule in [BranchRule::MostFractional, BranchRule::FirstFractional] {
        for sel in [NodeSelection::BestBound, NodeSelection::DepthFirst] {
            let opts = MinlpOptions {
                branch_rule: rule,
                node_selection: sel,
                ..Default::default()
            };
            let sol = solve_oa_bnb(&p, &opts);
            assert_eq!(sol.status, MinlpStatus::Optimal, "{rule:?}/{sel:?}");
            objs.push(sol.objective);
        }
    }
    for w in objs.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-4, "{objs:?}");
    }
}

#[test]
fn binary_encoding_agrees_with_native_sets() {
    let mut p = MinlpProblem::new();
    let n1 = p.add_set_var(0.0, [2, 4, 6, 10, 14, 20, 30]);
    let n2 = p.add_int_var(0.0, 1, 40);
    let t = p.add_var(1.0, 0.0, 1e9);
    for (v, a) in [(n1, 333.0), (n2, 181.0)] {
        p.add_constraint(
            ConstraintFn::new(format!("perf{v}"))
                .nonlinear_term(v, ScalarFn::perf_model(a, 0.0, 1.0))
                .linear_term(t, -1.0),
        );
    }
    p.add_constraint(
        ConstraintFn::new("cap")
            .linear_term(n1, 1.0)
            .linear_term(n2, 1.0)
            .with_constant(-44.0),
    );
    let native = solve_oa_bnb(&p, &MinlpOptions::default());
    let (enc, blocks) = encode_sets_as_binaries(&p);
    let binary = solve_oa_bnb(&enc, &MinlpOptions::default());
    assert_eq!(native.status, MinlpStatus::Optimal);
    assert_eq!(binary.status, MinlpStatus::Optimal);
    assert!(
        (native.objective - binary.objective).abs() < 1e-3,
        "native {} vs binary {}",
        native.objective,
        binary.objective
    );
    // The binary path must actually carry the encoding overhead the paper
    // complains about: more variables.
    assert_eq!(enc.num_vars(), p.num_vars() + blocks[0].2);
}

/// Random 2-3 component allocations: OA agrees with the exhaustive
/// oracle. Small case count — each case is a full MINLP solve.
#[test]
fn oa_matches_oracle_on_random_instances() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x8b);
    for case in 0..12 {
        let k = rng.usize_range(2, 3);
        let loads: Vec<(f64, f64)> = (0..k)
            .map(|_| (rng.f64_range(20.0, 800.0), rng.f64_range(0.0, 10.0)))
            .collect();
        let cap = rng.i64_range(6, 19);
        let p = allocation(&loads, cap);
        let oa = solve_oa_bnb(&p, &MinlpOptions::default());
        let oracle = solve_exhaustive(&p, 2_000_000).expect("enumerable");
        assert_eq!(oa.status, MinlpStatus::Optimal, "case {case}");
        assert_eq!(oracle.status, MinlpStatus::Optimal, "case {case}");
        assert!(
            (oa.objective - oracle.objective).abs() <= 1e-3 * oracle.objective.abs().max(1.0),
            "case {case}: oa {} vs oracle {}",
            oa.objective,
            oracle.objective
        );
    }
}

/// Random set-constrained single-variable problems: the optimum must be
/// an allowed value minimizing the (convex) curve.
#[test]
fn set_variable_optimum_is_best_member() {
    let mut rng = Rng::new(hslb_rng::seeds::TESTKIT ^ 0x9b);
    for case in 0..12 {
        let count = rng.usize_range(2, 9);
        let values = rng.distinct_sorted(count, 1, 199);
        let a = rng.f64_range(50.0, 2000.0);
        let b = rng.f64_range(0.0, 5.0);
        let mut p = MinlpProblem::new();
        let n = p.add_set_var(0.0, values.iter().copied());
        let t = p.add_var(1.0, 0.0, 1e9);
        p.add_constraint(
            ConstraintFn::new("perf")
                .nonlinear_term(n, ScalarFn::perf_model(a, b, 1.0))
                .linear_term(t, -1.0),
        );
        let sol = solve_oa_bnb(&p, &MinlpOptions::default());
        assert_eq!(sol.status, MinlpStatus::Optimal, "case {case}");
        let best = values
            .iter()
            .map(|&v| a / v as f64 + b * v as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(
            (sol.objective - best).abs() <= 1e-4 * best.max(1.0),
            "case {case}: solver {} vs best member {}",
            sol.objective,
            best
        );
        assert!(values.contains(&(sol.x[n].round() as i64)), "case {case}");
    }
}
