//! Tier-1 differential verification: the full seeded testkit suite plus the
//! committed regression corpus.
//!
//! Deterministic by construction — every case is a pure function of
//! `(layer, seed, size)` and the suite seed is fixed — so a failure here is
//! a real disagreement between two implementations, reproducible with the
//! printed `testkit replay` triple.

use hslb_testkit::{corpus_cases, run_case, run_suite, Layer};

/// ≥500 seeded instances across every layer (LP duals, NLP KKT, MINLP
/// backends vs oracle, flat waterfill, fits vs truth, CESM oracle,
/// end-to-end pipeline, metamorphic properties) with zero disagreements.
#[test]
fn suite_has_no_undocumented_disagreements() {
    let report = run_suite(hslb_rng::seeds::TESTKIT);
    assert!(
        report.cases_run >= 500,
        "suite shrank below the 500-instance floor: {}",
        report.cases_run
    );
    if !report.failures.is_empty() {
        let mut msg = format!("{} differential failures:\n", report.failures.len());
        for f in &report.failures {
            msg.push_str(&format!("  {f}\n"));
        }
        panic!("{msg}");
    }
}

/// Every minimized failure ever found by the fuzzer stays fixed.
#[test]
fn regression_corpus_stays_green() {
    for (layer, seed, size) in corpus_cases() {
        if let Err(msg) = run_case(layer, seed, size) {
            panic!(
                "corpus regression {} seed={seed:#x} size={size}: {msg}",
                layer.name()
            );
        }
    }
}

/// A second, disjoint seed base: guards against the suite passing only on
/// its blessed seed (the per-case seeds are hashed from the base, so these
/// instances share nothing with the tier-1 sweep).
#[test]
fn alternate_seed_base_spot_check() {
    for layer in [Layer::Lp, Layer::Nlp, Layer::Flat, Layer::MetaMonotonicity] {
        let report = hslb_testkit::run_layer(layer, hslb_rng::seeds::TESTKIT ^ 0xdead, 10);
        assert!(
            report.failures.is_empty(),
            "layer {} failed off the blessed seed: {}",
            layer.name(),
            report.failures[0]
        );
    }
}
