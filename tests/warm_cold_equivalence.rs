//! Warm starts are advisory: reusing parent barrier points and simplex
//! bases may only change the *work counters*, never the answers. This suite
//! pins that contract two ways: a 500-instance differential sweep over the
//! testkit generator (status, objective, incumbent feasibility), and a
//! pivot-count regression pin for the dual-simplex basis reuse that OA
//! masters rely on.

use hslb_lp::{LinearProgram, LpStatus, RowSense, SimplexOptions, WarmBasis};
use hslb_minlp::{
    solve_nlp_bnb, solve_oa_bnb, solve_parallel_bnb, MinlpOptions, MinlpSolution, MinlpStatus,
};
use hslb_rng::Rng;
use hslb_testkit::gen;

/// Objective agreement tolerance, relative to the cold optimum's scale.
const OBJ_TOL: f64 = 1e-5;
/// Feasibility tolerance for returned incumbents (matches the solvers'
/// own acceptance tolerance).
const FEAS_TOL: f64 = 1e-5;

#[test]
fn warm_and_cold_agree_across_500_generated_instances() {
    let warm_opts = MinlpOptions::default();
    let cold_opts = MinlpOptions {
        warm_start: false,
        ..MinlpOptions::default()
    };
    assert!(warm_opts.warm_start, "warm starts must default on");

    let mut rng = Rng::new(0x5EED_0A11);
    for case in 0..500u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::minlp_instance(&mut rng, size);
        // Cycle the backend so every solver exercises its warm path across
        // the sweep; each instance is still judged warm-vs-cold on the
        // *same* backend.
        let solve: fn(&hslb_minlp::MinlpProblem, &MinlpOptions) -> MinlpSolution = match case % 3 {
            0 => solve_oa_bnb,
            1 => solve_nlp_bnb,
            _ => solve_parallel_bnb,
        };
        let warm = solve(&inst.problem, &warm_opts);
        let cold = solve(&inst.problem, &cold_opts);
        assert_eq!(
            warm.status, cold.status,
            "case {case}: warm/cold status diverged"
        );
        if warm.status != MinlpStatus::Optimal {
            continue;
        }
        assert!(
            (warm.objective - cold.objective).abs() <= OBJ_TOL * cold.objective.abs().max(1.0),
            "case {case}: warm objective {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            inst.problem.is_feasible(&warm.x, FEAS_TOL),
            "case {case}: warm incumbent infeasible"
        );
        assert!(
            inst.problem.is_feasible(&cold.x, FEAS_TOL),
            "case {case}: cold incumbent infeasible"
        );
    }
}

/// Per-family μ₀ hook (`hslb_testkit::mu0_scale`): with the family's scale
/// applied, warm solves must never pay more Newton iterations than cold
/// ones across the family's generated instances (aggregate, 25 instances
/// per family). This is the guard the ROADMAP watch item asked for — a new
/// family whose μ₀ heuristic makes warm starts a *regression* fails here,
/// not in production.
#[test]
fn per_family_mu0_keeps_warm_newton_at_or_below_cold() {
    use hslb::{build_flat_model, build_layout_model, Layout};
    use hslb_testkit::{family_options, Layer};

    type FamilyBuilder = fn(&mut Rng, u32) -> hslb_minlp::MinlpProblem;
    let families: [(Layer, FamilyBuilder); 3] = [
        (Layer::Minlp, |rng, size| {
            gen::minlp_instance(rng, size).problem
        }),
        (Layer::Flat, |rng, size| {
            build_flat_model(&gen::flat_spec(rng, size)).problem
        }),
        (Layer::Cesm, |rng, size| {
            build_layout_model(&gen::cesm_spec(rng, size), Layout::Hybrid).problem
        }),
    ];
    for (layer, build) in families {
        let warm_opts = family_options(layer);
        let cold_opts = MinlpOptions {
            warm_start: false,
            ..family_options(layer)
        };
        let mut rng = Rng::new(0xFA41_71E5 ^ layer as u64);
        let (mut warm_total, mut cold_total) = (0u64, 0u64);
        for case in 0..25u64 {
            let size = (case % 6) as u32 + 1;
            let problem = build(&mut rng, size);
            let warm = solve_nlp_bnb(&problem, &warm_opts);
            let cold = solve_nlp_bnb(&problem, &cold_opts);
            assert_eq!(
                warm.status,
                cold.status,
                "{} case {case}: warm/cold status diverged",
                layer.name()
            );
            warm_total += warm.stats.newton_iters;
            cold_total += cold.stats.newton_iters;
        }
        assert!(
            warm_total <= cold_total,
            "family {}: warm Newton total {warm_total} exceeds cold {cold_total}",
            layer.name()
        );
    }
}

/// Mimics one OA master iteration: solve, append a violated `<=` cut, and
/// re-solve. The warm re-solve enters through the dual simplex from the
/// previous basis and must beat the cold from-scratch pivot count — that
/// inequality is the whole point of keeping the basis across cut rounds.
#[test]
fn dual_resolve_after_cut_beats_cold_pivot_count() {
    let mut lp = LinearProgram::new();
    let x1 = lp.add_var(-3.0, 0.0, 10.0);
    let x2 = lp.add_var(-2.0, 0.0, 10.0);
    let x3 = lp.add_var(-1.0, 0.0, 10.0);
    lp.add_row(vec![(x1, 1.0), (x2, 1.0), (x3, 1.0)], RowSense::Le, 15.0);
    lp.add_row(vec![(x1, 2.0), (x2, 1.0)], RowSense::Le, 18.0);

    let opts = SimplexOptions::default();
    let mut basis = WarmBasis::new();
    let first = hslb_lp::solve_warm(&lp, &opts, &mut basis);
    assert_eq!(first.status, LpStatus::Optimal);

    // An OA-style cut violated at the current optimum.
    lp.add_row(vec![(x1, 1.0), (x2, 2.0)], RowSense::Le, 12.0);

    let warm = hslb_lp::solve_warm(&lp, &opts, &mut basis);
    let cold = hslb_lp::solve_with(&lp, &opts);
    assert_eq!(warm.status, LpStatus::Optimal);
    assert_eq!(cold.status, LpStatus::Optimal);
    assert!(
        (warm.objective - cold.objective).abs() <= 1e-9 * cold.objective.abs().max(1.0),
        "warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert!(
        warm.warm_used,
        "re-solve must enter through the saved basis"
    );
    assert!(
        warm.iterations < cold.iterations,
        "dual re-solve must take fewer pivots: warm {} vs cold {}",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(
        warm.iterations, warm.dual_pivots,
        "all warm re-solve work should be dual pivots"
    );
}
