//! End-to-end pipeline tests: gather → fit → solve → execute on the CESM
//! simulator, asserting the paper's qualitative results.

use hslb::pipeline::run_hslb;
use hslb::{Layout, SolverBackend, Workload};
use hslb_cesm_sim::{manual_allocation, CesmSimulator, Scenario};
use hslb_minlp::MinlpOptions;

fn run(scenario: &Scenario, seed: u64) -> (hslb::HslbOutcome, f64) {
    let mut sim = CesmSimulator::new(scenario.clone(), seed);
    let manual = manual_allocation(scenario);
    let manual_total = sim.execute_hybrid(&manual).total;
    let counts = scenario.benchmark_counts(5);
    let out = run_hslb(
        &mut sim,
        &counts,
        Layout::Hybrid,
        SolverBackend::OuterApproximation,
        &MinlpOptions::default(),
    )
    .expect("paper scenarios are feasible");
    (out, manual_total)
}

#[test]
fn one_degree_128_matches_paper_shape() {
    let scenario = Scenario::one_degree(128);
    let (out, manual_total) = run(&scenario, 42);

    // Fits must be good, like the paper's "R² was very close to 1".
    for fit in &out.fits {
        assert!(fit.quality.r_squared > 0.97, "{:?}", fit.quality);
    }
    // Paper: manual and HSLB totals are "very close to each other";
    // manual 416 s, HSLB actual 425 s at 128 nodes.
    let rel = (out.actual.total - manual_total).abs() / manual_total;
    assert!(
        rel < 0.10,
        "HSLB {} vs manual {manual_total}",
        out.actual.total
    );
    // Prediction accuracy: predicted within ~5% of actual.
    let pred_err = (out.predicted.total - out.actual.total).abs() / out.actual.total;
    assert!(
        pred_err < 0.05,
        "predicted {} vs actual {}",
        out.predicted.total,
        out.actual.total
    );
    // Structural constraints of layout 1.
    let a = out.allocation;
    assert!(a.ice + a.lnd <= a.atm);
    assert!(a.atm + a.ocn <= 128);
    // Ocean count admissible (even numbers / 768 at 1°).
    assert!(scenario.allowed(3).contains(a.ocn as i64), "{a:?}");
}

#[test]
fn one_degree_totals_in_paper_ballpark() {
    // Paper Table III: ~410-425 s at 128 nodes, ~80-87 s at 2048.
    let (out_128, _) = run(&Scenario::one_degree(128), 1);
    assert!(
        (out_128.actual.total - 420.0).abs() / 420.0 < 0.10,
        "{}",
        out_128.actual.total
    );
    let (out_2048, _) = run(&Scenario::one_degree(2048), 1);
    assert!(
        (out_2048.actual.total - 83.0).abs() / 83.0 < 0.15,
        "{}",
        out_2048.actual.total
    );
}

#[test]
fn eighth_degree_unconstrained_beats_constrained_at_32k() {
    // The abstract's headline: ~25% improvement at 32,768 nodes once the
    // ocean constraint is lifted.
    let seed = 7;
    let (constrained, manual_total) = run(&Scenario::eighth_degree(32_768), seed);
    let (unconstrained, _) = run(&Scenario::eighth_degree_unconstrained(32_768), seed);
    assert!(
        unconstrained.actual.total < constrained.actual.total,
        "unconstrained {} vs constrained {}",
        unconstrained.actual.total,
        constrained.actual.total
    );
    let improvement = (manual_total - unconstrained.actual.total) / manual_total;
    assert!(
        improvement > 0.15,
        "expected ≥15% improvement over the manual baseline, got {:.1}%",
        improvement * 100.0
    );
    // Paper's predicted free ocean count was 9812; ours must land in a
    // similar region (well above the hard-coded 6124, far below 19460).
    let ocn = unconstrained.allocation.ocn;
    assert!((6124..=16_000).contains(&ocn), "free ocean count {ocn}");
}

#[test]
fn gather_uses_requested_sample_counts() {
    let scenario = Scenario::one_degree(256);
    let mut sim = CesmSimulator::new(scenario.clone(), 3);
    let counts = scenario.benchmark_counts(5);
    let data = hslb::pipeline::gather(&mut sim, &counts);
    for (c, d) in data.iter().enumerate() {
        assert!(
            d.len() >= 4,
            "component {c} needs >4 points for the 4-parameter fit (paper §III-C)"
        );
    }
    assert_eq!(
        sim.benchmark_log.len(),
        counts.iter().map(Vec::len).sum::<usize>()
    );
}

#[test]
fn pipeline_prediction_interpolates() {
    // The chosen allocation must lie within the benchmarked node ranges
    // (the paper: predictions "interpolated rather than extrapolated").
    let scenario = Scenario::one_degree(512);
    let mut sim = CesmSimulator::new(scenario.clone(), 9);
    let counts = scenario.benchmark_counts(5);
    let data = hslb::pipeline::gather(&mut sim, &counts);
    let out = run(&scenario, 9).0;
    let alloc = [
        out.allocation.ice,
        out.allocation.lnd,
        out.allocation.atm,
        out.allocation.ocn,
    ];
    for (c, &n) in alloc.iter().enumerate() {
        assert!(
            data[c].covers(n),
            "component {c}: allocation {n} outside benchmarked range {:?}",
            data[c].points()
        );
    }
    let _ = sim;
}

#[test]
fn different_seeds_reach_similar_allocations() {
    // The paper: different local fits "led to similar quality node
    // allocations". Two different noise seeds must land within a few
    // percent of each other in actual time.
    let (a, _) = run(&Scenario::one_degree(128), 100);
    let (b, _) = run(&Scenario::one_degree(128), 200);
    let rel = (a.actual.total - b.actual.total).abs() / a.actual.total;
    assert!(rel < 0.08, "{} vs {}", a.actual.total, b.actual.total);
}

#[test]
fn pipeline_runs_under_every_layout() {
    // The Execute step must follow the layout the Solve step optimized.
    let scenario = Scenario::one_degree(128);
    let mut totals = Vec::new();
    for layout in [
        Layout::Hybrid,
        Layout::SequentialAtmGroup,
        Layout::FullySequential,
    ] {
        let mut sim = CesmSimulator::new(scenario.clone(), 77);
        let counts = scenario.benchmark_counts(5);
        let out = run_hslb(
            &mut sim,
            &counts,
            layout,
            SolverBackend::OuterApproximation,
            &MinlpOptions::default(),
        )
        .expect("feasible at 128 nodes");
        // Prediction (same layout formula) must track the actual execution.
        // Under max() composition (layouts 1-2) single-component fit errors
        // are masked; the fully sequential sum adds them up, and at a small
        // machine the 5-sample ice/atm fits identify the serial floor
        // poorly (the paper's own 128-node ice prediction missed by ~12%).
        let tol = match layout {
            Layout::FullySequential => 0.25,
            _ => 0.12,
        };
        let err = (out.predicted.total - out.actual.total).abs() / out.actual.total;
        assert!(
            err < tol,
            "{layout:?}: predicted {} vs actual {}",
            out.predicted.total,
            out.actual.total
        );
        totals.push(out.actual.total);
    }
    // No universal ordering is asserted here: at a 128-node machine layout 3
    // gives *every* component the whole machine, which can beat the hybrid
    // split (the Figure-4 ranking holds at the paper's larger scales and is
    // asserted in reproduction_claims::layout_ranking_matches_figure_4).
    assert_eq!(totals.len(), 3);
}

#[test]
fn workload_trait_is_object_safe_enough_for_generic_use() {
    fn generic<W: Workload>(w: &W) -> u64 {
        w.total_nodes()
    }
    let sim = CesmSimulator::new(Scenario::one_degree(64), 0);
    assert_eq!(generic(&sim), 64);
}
