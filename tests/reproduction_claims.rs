//! Direct assertions on the paper's headline claims, driven through the
//! same harness the `tables` binary uses (see EXPERIMENTS.md).

use hslb::{build_layout_model, solve_model, Layout, SolverBackend};
use hslb_bench::harness::{objective_comparison, sos_ablation, table3_block, true_spec};
use hslb_cesm_sim::Scenario;

#[test]
fn table3_one_degree_128_reproduces() {
    let block = table3_block(&Scenario::one_degree(128), 20120101);
    let manual = &block.report.manual.as_ref().expect("preset exists").1;
    // Paper: manual 416.0, HSLB predicted 410.6, HSLB actual 425.2.
    assert!(
        (manual.total - 416.0).abs() / 416.0 < 0.07,
        "manual {}",
        manual.total
    );
    let predicted = block.report.hslb.1.total;
    assert!(
        (predicted - 410.6).abs() / 410.6 < 0.07,
        "predicted {predicted}"
    );
    let actual = block.report.actual.total;
    assert!((actual - 425.2).abs() / 425.2 < 0.07, "actual {actual}");
}

#[test]
fn table3_eighth_constrained_8192_improves_about_ten_percent() {
    // Paper: "improved by as much as 10% compared to the manual approach"
    // (manual 3785 s -> HSLB actual 3489 s ≈ 7.8%; predicted 3390 ≈ 10.4%).
    let block = table3_block(&Scenario::eighth_degree(8192), 20120101);
    let improvement = block
        .report
        .improvement_pct()
        .expect("manual preset exists");
    assert!(
        (4.0..16.0).contains(&improvement),
        "expected ~10% improvement, got {improvement:.1}%"
    );
    // HSLB must discover a larger ocean count than the manual 2356.
    assert!(block.report.hslb.0.ocn > 2356, "{:?}", block.report.hslb.0);
}

#[test]
fn unconstrained_ocean_at_32k_gives_paper_scale_win() {
    // Abstract: "we improved the speed of CESM on 32,768 nodes for 1/8°
    // resolution simulations by 25% compared to a baseline guess".
    let block = table3_block(&Scenario::eighth_degree_unconstrained(32_768), 20120101);
    let improvement = block
        .report
        .improvement_pct()
        .expect("synthesized baseline");
    assert!(
        improvement > 18.0,
        "expected paper-scale (~25%) improvement, got {improvement:.1}%"
    );
    // Paper predicted a free ocean count of 9812 (actual test 11880).
    let ocn = block.report.hslb.0.ocn;
    assert!((7000..=13_000).contains(&ocn), "free ocean count {ocn}");
}

#[test]
fn minlp_solves_well_under_the_papers_minute() {
    // §III-E: "the MINLP for 40960 nodes took less than 60 seconds to
    // solve on one core" — the hand-rolled stack should be far faster, but
    // the paper's bound is the contract.
    let spec = true_spec(&Scenario::one_degree(40_960));
    let model = build_layout_model(&spec, Layout::Hybrid);
    let start = std::time::Instant::now();
    let sol = solve_model(&model.problem, SolverBackend::OuterApproximation);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sol.status, hslb_minlp::MinlpStatus::Optimal);
    assert!(secs < 60.0, "solve took {secs:.1} s");
}

#[test]
fn sos_branching_beats_binary_encoding_by_an_order_of_magnitude() {
    // §III-E claims two orders of magnitude at the paper's set sizes
    // (|A| ≈ 1.6k); at 128 members one order is already conclusive and
    // keeps test time sane.
    let points = sos_ablation(&[128]);
    assert!(
        points[0].speedup() > 10.0,
        "expected ≥10x from interval branching, got {:.1}x",
        points[0].speedup()
    );
}

#[test]
fn objective_ranking_matches_section_iii_d() {
    // "The min-max function performed slightly better than the max-min
    // function … the third function [min-sum] performs much worse."
    let reps = objective_comparison(128, 1);
    let get = |o| {
        reps.iter()
            .find(|r| r.objective == o)
            .expect("all objectives present")
            .makespan
    };
    let minmax = get(hslb::Objective::MinMax);
    let maxmin = get(hslb::Objective::MaxMin);
    let minsum = get(hslb::Objective::MinSum);
    assert!(
        minmax <= maxmin + 1e-6,
        "minmax {minmax} vs maxmin {maxmin}"
    );
    assert!(
        minsum > minmax * 1.10,
        "min-sum must be clearly worse: {minsum} vs {minmax}"
    );
}

#[test]
fn layout_ranking_matches_figure_4() {
    let spec = true_spec(&Scenario::one_degree(512));
    let mut totals = Vec::new();
    for layout in Layout::ALL {
        let model = build_layout_model(&spec, layout);
        totals.push(solve_model(&model.problem, SolverBackend::OuterApproximation).objective);
    }
    // Layouts 1 and 2 similar (within 10%), layout 3 clearly worst.
    assert!(
        (totals[0] - totals[1]).abs() / totals[0] < 0.10,
        "{totals:?}"
    );
    assert!(totals[2] > totals[0] * 1.15, "{totals:?}");
}
