//! Concurrency soak for the serving front, in three phases:
//!
//! 1. **backpressure** — a paused 1-shard server floods past its queue
//!    bound: exactly `queue_cap` requests queue, the rest shed with
//!    explicit `Overloaded` replies (never a silent drop, never a
//!    deadlock), and resuming drains everything;
//! 2. **determinism** — 8 client threads fire 200 mixed requests each at
//!    a running 4-shard server, twice, same seeds, fake clock. Threads
//!    use disjoint structure/component namespaces and no deadline
//!    budgets, so each thread's reply transcript is a pure function of
//!    its own request sequence: the two runs must be byte-identical
//!    per thread;
//! 3. **reconciliation** — within each run, the server's aggregate
//!    counters must equal the sum of every reply's `served` delta
//!    (nothing double-counted, nothing lost — sheds included).

use hslb::{AllowedNodes, ComponentSpec, FlatSpec, Objective};
use hslb_json::ToJson;
use hslb_minlp::MinlpOptions;
use hslb_obs::{ClockHandle, FakeClock, ServeStats};
use hslb_perfmodel::PerfModel;
use hslb_rng::{hash_mix, Rng};
use hslb_serve::protocol::{Body, ErrorKind, Request};
use hslb_serve::{EngineOptions, Server, ServerOptions};

const THREADS: u64 = 8;
const REQUESTS_PER_THREAD: u64 = 200;

#[test]
fn paused_flood_sheds_at_the_bound_and_drains_without_deadlock() {
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            shards: 1,
            ..EngineOptions::default()
        },
        queue_cap: 8,
        start_paused: true,
        ..ServerOptions::default()
    });
    let handle = server.handle();
    let clients: Vec<_> = (0..32)
        .map(|_| {
            let h = handle.clone();
            std::thread::spawn(move || h.call(Request::Ping))
        })
        .collect();
    // Every submit either queues (then blocks for its reply) or sheds.
    loop {
        let (queued, shed) = handle.pressure(0);
        if queued as u64 + shed == 32 {
            assert_eq!(queued, 8, "the queue must saturate exactly at its cap");
            assert_eq!(shed, 24, "the excess must shed, not vanish");
            break;
        }
        std::thread::yield_now();
    }
    server.resume();
    let mut sum = ServeStats::default();
    let mut pongs = 0;
    let mut overloaded = 0;
    for client in clients {
        let reply = client.join().expect("client thread panicked");
        sum.merge(&reply.served);
        match reply.body {
            Body::Pong => pongs += 1,
            Body::Error {
                kind: ErrorKind::Overloaded,
                ..
            } => overloaded += 1,
            other => panic!("unexpected reply under flood: {other:?}"),
        }
    }
    assert_eq!((pongs, overloaded), (8, 24));
    let (serve, _) = handle.stats();
    assert_eq!(serve, sum, "aggregate == sum of replies, sheds included");
}

/// One thread's deterministic request script. Structures embed the thread
/// id (via `total_nodes`) and components are name-spaced per thread, so
/// no cross-thread traffic can touch this thread's cache entries,
/// observation stores, or coalescing groups.
fn request_script(thread: u64) -> Vec<Request> {
    let mut rng = Rng::new(hash_mix(&[0x50A6_5EED, thread]));
    // Four base structures per thread: k in 2..=3 and two budgets each.
    let base_specs: Vec<FlatSpec> = (0..4)
        .map(|v| {
            let k = 2 + (v % 2) as usize;
            let total = 12 + 40 * thread as i64 + 10 * v;
            FlatSpec {
                components: (0..k)
                    .map(|i| ComponentSpec {
                        name: format!("t{thread}_c{i}"),
                        model: PerfModel::amdahl(
                            rng.f64_range(40.0, 400.0),
                            rng.f64_range(0.0, 2.0),
                        ),
                        allowed: AllowedNodes::Range { min: 1, max: total },
                    })
                    .collect(),
                total_nodes: total,
                objective: Objective::MinMax,
            }
        })
        .collect();
    let component = format!("t{thread}_dyn");
    let truth = PerfModel::amdahl(rng.f64_range(50.0, 500.0), rng.f64_range(0.0, 3.0));
    (0..REQUESTS_PER_THREAD)
        .map(|i| match i % 10 {
            // Verbatim repeats: cold once, replayed from cache after.
            0..=3 => Request::Solve {
                spec: base_specs[(i as usize / 10) % base_specs.len()].clone(),
                budget: None,
            },
            // Coefficient drift: same structure, warm re-solve every time.
            4 => {
                let mut spec = base_specs[(i as usize / 10) % base_specs.len()].clone();
                let drift = 1.0 + 0.0005 * (i as f64 + 1.0);
                for c in &mut spec.components {
                    c.model.a *= drift;
                }
                Request::Solve { spec, budget: None }
            }
            5 | 6 => Request::Observe {
                component: component.clone(),
                points: vec![
                    (2 + (i % 7), truth.eval((2 + (i % 7)) as f64)),
                    (16 + (i % 5), truth.eval((16 + (i % 5)) as f64)),
                ],
            },
            7 => Request::Fit {
                component: component.clone(),
            },
            8 => Request::Ping,
            // An invalid spec: the error path must be deterministic too.
            // Structure (via total_nodes) stays thread- and request-unique —
            // an identical invalid spec in flight on two threads would get
            // legitimately deduped, which is cross-thread coupling this
            // test's disjointness premise excludes.
            _ => Request::Solve {
                spec: FlatSpec {
                    components: vec![ComponentSpec {
                        name: format!("t{thread}_bad"),
                        model: PerfModel::amdahl(10.0, 0.0),
                        allowed: AllowedNodes::Range { min: 1, max: 1 },
                    }],
                    total_nodes: -((1000 * thread + i) as i64),
                    objective: Objective::MinMax,
                },
                budget: None,
            },
        })
        .collect()
}

/// Runs one full 8×200 session and returns (per-thread reply transcripts,
/// sum of served deltas, aggregate stats at quiescence).
fn run_session() -> (Vec<Vec<String>>, ServeStats, ServeStats) {
    let fake = FakeClock::new(0.0);
    let solver = MinlpOptions {
        clock: ClockHandle::fake(&fake),
        ..Default::default()
    };
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            shards: 4,
            cache_cap: 128,
            solver,
        },
        queue_cap: 64,
        batch_max: 8,
        start_paused: false,
    });
    let handle = server.handle();
    let clients: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = handle.clone();
            std::thread::spawn(move || {
                let mut transcript = Vec::new();
                let mut sum = ServeStats::default();
                for request in request_script(t) {
                    let reply = h.call(request);
                    sum.merge(&reply.served);
                    transcript.push(reply.to_json().to_compact());
                }
                (transcript, sum)
            })
        })
        .collect();
    let mut transcripts = Vec::new();
    let mut delta_sum = ServeStats::default();
    for client in clients {
        let (transcript, sum) = client.join().expect("client thread panicked");
        transcripts.push(transcript);
        delta_sum.merge(&sum);
    }
    let (aggregate, _) = handle.stats();
    (transcripts, delta_sum, aggregate)
}

#[test]
fn eight_threads_two_runs_byte_identical_and_counters_reconcile() {
    let (run_a, sum_a, agg_a) = run_session();
    let (run_b, sum_b, agg_b) = run_session();

    // Phase 3: aggregate == sum of per-reply deltas, each run.
    assert_eq!(agg_a, sum_a, "run A: counters lost or double-counted");
    assert_eq!(agg_b, sum_b, "run B: counters lost or double-counted");
    assert_eq!(
        agg_a.queries,
        THREADS * REQUESTS_PER_THREAD,
        "nothing shed at this queue depth, nothing lost"
    );
    assert!(agg_a.cache_hits > 0, "verbatim repeats must replay");
    assert!(agg_a.warm_seeded > 0, "drifted repeats must warm-seed");
    assert!(agg_a.errors > 0, "the invalid-spec error path must engage");
    assert_eq!(agg_a.shed, 0);

    // Phase 2: per-thread transcripts are byte-identical across runs.
    for (t, (a, b)) in run_a.iter().zip(&run_b).enumerate() {
        assert_eq!(a.len(), b.len(), "thread {t}: transcript length diverged");
        for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                ra, rb,
                "thread {t}, request {i}: reply bytes diverged between runs"
            );
        }
    }
    // And the two runs' aggregates agree in full.
    assert_eq!(agg_a, agg_b, "aggregate counters diverged between runs");
}
