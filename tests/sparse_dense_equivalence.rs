//! Backend equivalence: the sparse numerical core (CSC LU + eta updates in
//! the simplex, sparse Cholesky/LU KKT solves in the barrier) is an
//! implementation detail — forcing `LinalgBackend::Sparse` vs
//! `LinalgBackend::Dense` may change work counters and rounding in the
//! last digits, never statuses, objectives, or feasibility. This suite
//! pins that contract over 530 seeded instances across every solver layer
//! (LP, netlib-style LP, NLP, all three MINLP backends), mirroring
//! `warm_cold_equivalence.rs`, plus a pinned pivot/Newton-count envelope
//! on fixed instances so silent work blowups in either backend fail loudly.

use hslb_linalg::LinalgBackend;
use hslb_lp::{LpStatus, SimplexOptions};
use hslb_minlp::{
    solve_nlp_bnb, solve_oa_bnb, solve_parallel_bnb, MinlpOptions, MinlpSolution, MinlpStatus,
};
use hslb_nlp::{BarrierOptions, NlpStatus};
use hslb_rng::Rng;
use hslb_testkit::check::{backend_diff_tol, lp_cond_scale};
use hslb_testkit::gen;

/// Objective agreement tolerance for the NLP/MINLP layers, relative to the
/// dense optimum's scale. Looser than the LP tolerance: barrier solves
/// terminate at a finite duality gap, so two factorization orders stop at
/// slightly different interior points.
const OBJ_TOL: f64 = 1e-4;
/// Feasibility tolerance for returned points (the solvers' own acceptance
/// tolerance).
const FEAS_TOL: f64 = 1e-5;

fn dense_opts() -> SimplexOptions {
    SimplexOptions {
        backend: LinalgBackend::Dense,
        ..Default::default()
    }
}

fn sparse_opts() -> SimplexOptions {
    SimplexOptions {
        backend: LinalgBackend::Sparse,
        ..Default::default()
    }
}

#[test]
fn lp_backends_agree_across_200_generated_instances() {
    let mut rng = Rng::new(0x5BA2_5E0D);
    for case in 0..200u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::lp_instance(&mut rng, size);
        let dense = hslb_lp::solve_with(&inst.lp, &dense_opts());
        let sparse = hslb_lp::solve_with(&inst.lp, &sparse_opts());
        assert_eq!(
            dense.status, sparse.status,
            "case {case}: backend status diverged"
        );
        if dense.status != LpStatus::Optimal {
            continue;
        }
        let tol = backend_diff_tol(
            inst.lp.num_vars() + inst.lp.num_rows(),
            lp_cond_scale(&inst.lp),
        );
        assert!(
            (dense.objective - sparse.objective).abs() <= tol * dense.objective.abs().max(1.0),
            "case {case}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        assert!(
            inst.lp.is_feasible(&sparse.x, tol),
            "case {case}: sparse point infeasible"
        );
        for (j, (&xd, &xs)) in dense.x.iter().zip(&sparse.x).enumerate() {
            assert!(
                (xd - xs).abs() <= 1e3 * tol * xd.abs().max(1.0),
                "case {case}: x[{j}] dense {xd} vs sparse {xs}"
            );
        }
    }
}

#[test]
fn lp_backends_agree_on_60_netlib_scale_instances() {
    // Larger instances from the netlib-style generator: these cross the
    // Auto backend's crossover dimension, so the sparse path here is the
    // production path, not a forced test configuration.
    for case in 0..60u64 {
        let n = 20 + (case as usize % 9) * 10; // 20..100 columns
        let m = n / 2;
        let (lp, _) = hslb_loaders::netlib_like(0xD1FF_0000 + case, n, m).to_linear_program();
        let dense = hslb_lp::solve_with(&lp, &dense_opts());
        let sparse = hslb_lp::solve_with(&lp, &sparse_opts());
        assert_eq!(
            dense.status, sparse.status,
            "netlib case {case}: status diverged"
        );
        if dense.status != LpStatus::Optimal {
            continue;
        }
        let tol = backend_diff_tol(lp.num_vars() + lp.num_rows(), lp_cond_scale(&lp));
        assert!(
            (dense.objective - sparse.objective).abs() <= tol * dense.objective.abs().max(1.0),
            "netlib case {case}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        assert!(
            lp.is_feasible(&sparse.x, tol),
            "netlib case {case}: sparse point infeasible"
        );
    }
}

#[test]
fn nlp_backends_agree_across_120_generated_instances() {
    let dense_opts = BarrierOptions {
        backend: LinalgBackend::Dense,
        ..Default::default()
    };
    let sparse_opts = BarrierOptions {
        backend: LinalgBackend::Sparse,
        ..Default::default()
    };
    let mut rng = Rng::new(0x5BA2_01CE);
    for case in 0..120u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::nlp_instance(&mut rng, size);
        let dense = hslb_nlp::solve_with(&inst.problem, &dense_opts)
            .unwrap_or_else(|e| panic!("case {case}: dense barrier error {e:?}"));
        let sparse = hslb_nlp::solve_with(&inst.problem, &sparse_opts)
            .unwrap_or_else(|e| panic!("case {case}: sparse barrier error {e:?}"));
        assert_eq!(
            dense.status, sparse.status,
            "case {case}: backend status diverged"
        );
        if dense.status != NlpStatus::Optimal {
            continue;
        }
        assert!(
            (dense.objective - sparse.objective).abs() <= OBJ_TOL * dense.objective.abs().max(1.0),
            "case {case}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        assert!(
            inst.problem.is_feasible(&sparse.x, FEAS_TOL),
            "case {case}: sparse point infeasible"
        );
        assert!(
            sparse.factorizations >= 1,
            "case {case}: sparse path unused"
        );
        assert_eq!(dense.factorizations, 0, "case {case}: dense path counted");
    }
}

#[test]
fn minlp_backends_agree_across_150_generated_instances() {
    let dense_opts = MinlpOptions {
        backend: LinalgBackend::Dense,
        ..MinlpOptions::default()
    };
    let sparse_opts = MinlpOptions {
        backend: LinalgBackend::Sparse,
        ..MinlpOptions::default()
    };
    let mut rng = Rng::new(0x5BA2_3141);
    for case in 0..150u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::minlp_instance(&mut rng, size);
        // Cycle the backend so every solver exercises the sparse kernels
        // across the sweep; each instance is still judged dense-vs-sparse
        // on the *same* solver.
        let solve: fn(&hslb_minlp::MinlpProblem, &MinlpOptions) -> MinlpSolution = match case % 3 {
            0 => solve_oa_bnb,
            1 => solve_nlp_bnb,
            _ => solve_parallel_bnb,
        };
        let dense = solve(&inst.problem, &dense_opts);
        let sparse = solve(&inst.problem, &sparse_opts);
        assert_eq!(
            dense.status, sparse.status,
            "case {case}: backend status diverged"
        );
        if dense.status != MinlpStatus::Optimal {
            continue;
        }
        assert!(
            (dense.objective - sparse.objective).abs() <= OBJ_TOL * dense.objective.abs().max(1.0),
            "case {case}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        assert!(
            inst.problem.is_feasible(&sparse.x, FEAS_TOL),
            "case {case}: sparse incumbent infeasible"
        );
    }
}

/// Schedule equivalence: the Mehrotra predictor-corrector loop (default)
/// and the legacy fixed-μ schedule (`BarrierOptions::legacy_schedule`,
/// kept for one release as the A/B control) are two routes to the same
/// barrier optimum — statuses, objectives, and feasibility must agree to
/// the same tolerance as a backend swap; only the work counters differ.
#[test]
fn mpc_and_legacy_schedule_agree_across_150_generated_instances() {
    // NLP layer: the barrier solver head-to-head.
    let mpc_opts = BarrierOptions::default();
    let legacy_opts = BarrierOptions {
        legacy_schedule: true,
        ..Default::default()
    };
    assert!(
        !mpc_opts.legacy_schedule,
        "MPC must be the default schedule"
    );
    let mut rng = Rng::new(0x3C4E_D01E);
    for case in 0..60u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::nlp_instance(&mut rng, size);
        let mpc = hslb_nlp::solve_with(&inst.problem, &mpc_opts)
            .unwrap_or_else(|e| panic!("case {case}: MPC barrier error {e:?}"));
        let legacy = hslb_nlp::solve_with(&inst.problem, &legacy_opts)
            .unwrap_or_else(|e| panic!("case {case}: legacy barrier error {e:?}"));
        assert_eq!(
            mpc.status, legacy.status,
            "case {case}: schedule status diverged"
        );
        if mpc.status != NlpStatus::Optimal {
            continue;
        }
        assert!(
            (mpc.objective - legacy.objective).abs() <= OBJ_TOL * legacy.objective.abs().max(1.0),
            "case {case}: mpc {} vs legacy {}",
            mpc.objective,
            legacy.objective
        );
        assert!(
            inst.problem.is_feasible(&mpc.x, FEAS_TOL),
            "case {case}: MPC point infeasible"
        );
    }

    // MINLP layer: whole trees under each schedule, cycling the backend so
    // every solver sees both; each instance is judged on the same solver.
    let mpc_opts = MinlpOptions::default();
    let legacy_opts = MinlpOptions {
        legacy_mu_schedule: true,
        ..MinlpOptions::default()
    };
    let mut rng = Rng::new(0x3C4E_D02E);
    for case in 0..90u64 {
        let size = (case % 6) as u32 + 1;
        let inst = gen::minlp_instance(&mut rng, size);
        let solve: fn(&hslb_minlp::MinlpProblem, &MinlpOptions) -> MinlpSolution = match case % 3 {
            0 => solve_oa_bnb,
            1 => solve_nlp_bnb,
            _ => solve_parallel_bnb,
        };
        let mpc = solve(&inst.problem, &mpc_opts);
        let legacy = solve(&inst.problem, &legacy_opts);
        assert_eq!(
            mpc.status, legacy.status,
            "case {case}: schedule status diverged"
        );
        if mpc.status != MinlpStatus::Optimal {
            continue;
        }
        assert!(
            (mpc.objective - legacy.objective).abs() <= OBJ_TOL * legacy.objective.abs().max(1.0),
            "case {case}: mpc {} vs legacy {}",
            mpc.objective,
            legacy.objective
        );
        assert!(
            inst.problem.is_feasible(&mpc.x, FEAS_TOL),
            "case {case}: MPC incumbent infeasible"
        );
    }
}

/// Pinned work envelope on fixed instances: the backends must take the
/// *same* pivot path (pivoting decisions depend on signs and ratio tests,
/// which both factorizations compute to well within the decision
/// tolerances at these sizes), and Newton counts must stay inside an
/// envelope so a silently quadratic sparse kernel cannot hide behind
/// matching objectives.
#[test]
fn pinned_pivot_and_newton_envelope() {
    // LP: the n=100 netlib-style instance from the perf suite's seed
    // family. Identical pivot counts, pinned range.
    let (lp, _) = hslb_loaders::netlib_like(0xB0A7_F00D, 100, 60).to_linear_program();
    let dense = hslb_lp::solve_with(&lp, &dense_opts());
    let sparse = hslb_lp::solve_with(&lp, &sparse_opts());
    assert!(dense.is_optimal() && sparse.is_optimal());
    assert_eq!(
        dense.iterations, sparse.iterations,
        "backends took different pivot paths"
    );
    assert!(
        (150..=600).contains(&dense.iterations),
        "pivot count {} outside pinned envelope [150, 600]",
        dense.iterations
    );
    assert!(
        (1..=20).contains(&sparse.factorizations),
        "sparse refactorizations {} outside [1, 20]",
        sparse.factorizations
    );

    // NLP: a fixed mid-size barrier instance. Newton counts may differ a
    // little between factorization orders (line searches see different
    // last-digit rounding) but both must stay in one envelope.
    let mut rng = Rng::new(0x0E4F_EED5);
    let inst = gen::nlp_instance(&mut rng, 4);
    let dense = hslb_nlp::solve_with(
        &inst.problem,
        &BarrierOptions {
            backend: LinalgBackend::Dense,
            ..Default::default()
        },
    )
    .expect("dense solve");
    let sparse = hslb_nlp::solve_with(
        &inst.problem,
        &BarrierOptions {
            backend: LinalgBackend::Sparse,
            ..Default::default()
        },
    )
    .expect("sparse solve");
    assert_eq!(dense.status, NlpStatus::Optimal);
    assert_eq!(sparse.status, NlpStatus::Optimal);
    for (tag, iters) in [
        ("dense", dense.newton_iters),
        ("sparse", sparse.newton_iters),
    ] {
        assert!(
            (10..=2000).contains(&iters),
            "{tag} newton count {iters} outside pinned envelope [10, 2000]"
        );
    }
    let (lo, hi) = (
        dense.newton_iters.min(sparse.newton_iters),
        dense.newton_iters.max(sparse.newton_iters),
    );
    assert!(
        hi <= 2 * lo,
        "newton counts diverged: dense {} vs sparse {}",
        dense.newton_iters,
        sparse.newton_iters
    );
}
