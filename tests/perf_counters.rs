//! Golden counter snapshots for the pinned perf experiments (E7, E8) and
//! the serving discipline suite.
//!
//! These are the same workloads `hslb-perf` records into
//! `BENCH_solver.json`; pinning the counters here means `cargo test` alone
//! catches algorithmic drift (extra nodes, lost prunes, pivot blowups,
//! changed caching/coalescing decisions) with exact equality, while the
//! `--smoke` gate allows small drift on work counters only.

use hslb::{build_layout_model, solve_model_with, Layout, SolverBackend};
use hslb_bench::harness::{sos_test_problem, true_spec};
use hslb_bench::serve_perf::serve_suite;
use hslb_cesm_sim::Scenario;
use hslb_minlp::{encode_sets_as_binaries, MinlpOptions, SolveStats};
use hslb_obs::ServeStats;

/// E7 machine scale: the paper's 40,960-node 1° layout-1 instance.
const E7_TOTAL_NODES: u64 = 40_960;

fn e7_stats(backend: SolverBackend, threads: usize) -> SolveStats {
    let spec = true_spec(&Scenario::one_degree(E7_TOTAL_NODES));
    let model = build_layout_model(&spec, Layout::Hybrid);
    let opts = MinlpOptions {
        threads,
        ..Default::default()
    };
    solve_model_with(&model.problem, backend, &opts).stats
}

#[test]
fn e7_oa_counters_golden() {
    let stats = e7_stats(SolverBackend::OuterApproximation, 0);
    let expected = SolveStats {
        nodes_opened: 33,
        pruned_by_bound: 11,
        pruned_infeasible: 0,
        incumbents: 11,
        oa_cuts: 56,
        lp_solves: 23,
        nlp_solves: 11,
        simplex_pivots: 36,
        // Mehrotra predictor-corrector barrier: every Newton iteration is
        // one predictor + one corrector solve off a single factorization
        // (5.4x the fixed-μ schedule's 1060 at a byte-identical tree).
        newton_iters: 198,
        predictor_steps: 198,
        corrector_steps: 198,
        line_search_backtracks: 94,
        lm_steps: 0,
        presolve_tightenings: 3,
        warm_start_hits: 22,
        dual_pivots: 28,
        // Dense-path refactorizations: one per LP solve (the sparse-only
        // eta/fill counters stay zero below the crossover).
        factorizations: 23,
        factor_updates: 0,
        fill_nnz: 0,
    };
    assert_eq!(stats, expected);
}

#[test]
fn e7_nlp_bnb_counters_golden() {
    let stats = e7_stats(SolverBackend::NlpBnb, 0);
    // Barrier v2 tree shape: MPC bounds are a shade tighter than the
    // fixed-μ schedule's, so tolerance-level ties in the best-bound queue
    // flip a few prune-vs-branch decisions (541 -> 741 nodes) while the
    // incumbents — and the optimum — are unchanged. The Newton total is
    // the headline: 25,848 -> 6,629 (3.9x) despite the extra nodes.
    let expected = SolveStats {
        nodes_opened: 741,
        pruned_by_bound: 370,
        pruned_infeasible: 0,
        incumbents: 2,
        oa_cuts: 0,
        lp_solves: 0,
        nlp_solves: 496,
        simplex_pivots: 0,
        newton_iters: 6629,
        predictor_steps: 6629,
        corrector_steps: 6629,
        line_search_backtracks: 3765,
        lm_steps: 0,
        presolve_tightenings: 248,
        warm_start_hits: 492,
        dual_pivots: 0,
        factorizations: 0,
        factor_updates: 0,
        fill_nnz: 0,
    };
    assert_eq!(stats, expected);
}

#[test]
fn e7_parallel_t1_counters_golden() {
    let stats = e7_stats(SolverBackend::ParallelBnb, 1);
    let expected = SolveStats {
        nodes_opened: 491,
        pruned_by_bound: 245,
        pruned_infeasible: 0,
        incumbents: 2,
        oa_cuts: 0,
        lp_solves: 0,
        nlp_solves: 492,
        simplex_pivots: 0,
        newton_iters: 6571,
        predictor_steps: 6571,
        corrector_steps: 6571,
        line_search_backtracks: 3726,
        lm_steps: 0,
        presolve_tightenings: 248,
        warm_start_hits: 488,
        dual_pivots: 0,
        factorizations: 0,
        factor_updates: 0,
        fill_nnz: 0,
    };
    assert_eq!(stats, expected);
}

/// E8 — native SOS branching vs explicit binary encoding (§III-E). The
/// paper reports a two-orders-of-magnitude *wall time* gap; in counters the
/// gap shows up as Newton-iteration blowup: the binary encoding adds one
/// variable per set member, so every node's barrier solve works in a
/// k-dimensional space with a weak relaxation, while native interval
/// branching keeps the NLP three-dimensional. (Node counts barely move —
/// the blowup is per-node work, which wall timings hide in noise and
/// counters expose deterministically.)
/// The pinned comparison runs both encodings on the paper-era fixed-μ
/// schedule so the rows measure the encoding alone (barrier v2 cuts
/// per-node work on both sides — see the next test).
#[test]
fn e8_binary_encoding_newton_blowup() {
    for k in [32usize, 128] {
        let p = sos_test_problem(k);
        let opts = MinlpOptions {
            legacy_mu_schedule: true,
            ..MinlpOptions::default()
        };
        let native = hslb_minlp::solve_oa_bnb(&p, &opts);
        let (enc, _) = encode_sets_as_binaries(&p);
        let binary = hslb_minlp::solve_oa_bnb(&enc, &opts);
        assert!(
            (native.objective - binary.objective).abs() < 1e-3 * native.objective.abs().max(1.0),
            "k={k}: encodings must agree on the optimum"
        );
        assert!(
            binary.stats.newton_iters >= 10 * native.stats.newton_iters,
            "k={k}: binary encoding should cost >=10x the Newton iterations, \
             got {} vs {}",
            binary.stats.newton_iters,
            native.stats.newton_iters
        );
    }
}

/// Under the Mehrotra predictor-corrector loop (the default), the blowup
/// *survives* — it is a property of the lifted k-dimensional space, not of
/// the μ schedule — but MPC cuts the per-node barrier cost several-fold on
/// both encodings and softens the ratio (39x -> 24x at k=32: binary
/// 18 321 -> 3 603, native 469 -> 148). This is the E8-side witness of the
/// barrier-v2 speedup (EXPERIMENTS.md § E7c) and the reason the pinned
/// §III-E comparison above stays on the legacy schedule: otherwise the
/// rows would mix the encoding penalty with the schedule change.
#[test]
fn e8_mpc_cuts_binary_encoding_cost() {
    let k = 32usize;
    let p = sos_test_problem(k);
    let legacy_opts = MinlpOptions {
        legacy_mu_schedule: true,
        ..MinlpOptions::default()
    };
    let mpc_opts = MinlpOptions::default();
    let (enc, _) = encode_sets_as_binaries(&p);
    let native = hslb_minlp::solve_oa_bnb(&p, &mpc_opts);
    let binary = hslb_minlp::solve_oa_bnb(&enc, &mpc_opts);
    let binary_legacy = hslb_minlp::solve_oa_bnb(&enc, &legacy_opts);
    assert!(
        (native.objective - binary.objective).abs() < 1e-3 * native.objective.abs().max(1.0),
        "k={k}: encodings must agree on the optimum"
    );
    assert!(
        binary.stats.newton_iters >= 10 * native.stats.newton_iters,
        "k={k}: the dimension blowup is schedule-independent, got {} vs {}",
        binary.stats.newton_iters,
        native.stats.newton_iters
    );
    assert!(
        4 * binary.stats.newton_iters < binary_legacy.stats.newton_iters,
        "k={k}: MPC should cut the binary encoding's Newton cost >=4x vs \
         the fixed-μ schedule, got {} vs {}",
        binary.stats.newton_iters,
        binary_legacy.stats.newton_iters
    );
}

/// The committed `BENCH_solver.json` baseline must match a fresh solve
/// exactly — regenerating it is part of any intentional solver change.
#[test]
fn committed_baseline_matches_fresh_e7_run() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json");
    let text = std::fs::read_to_string(path).expect("BENCH_solver.json is committed");
    let baseline = hslb_bench::perf::suite_from_json(&text).expect("baseline parses");
    let fresh = e7_stats(SolverBackend::OuterApproximation, 0);
    let case = baseline
        .iter()
        .find(|c| c.name == format!("e7_layout1_{E7_TOTAL_NODES}_oa"))
        .expect("baseline contains the E7 OA case");
    assert_eq!(case.stats, fresh, "baseline is stale; rerun hslb-perf");
}

/// Serving-discipline counters for the pinned mixed-traffic case. Unlike
/// solver work counters, every one of these is an exact decision (cache
/// hit or miss, coalesce or solve, shed or admit) — any drift means the
/// serving policy changed and the baseline must be regenerated on purpose.
#[test]
fn serve_mixed_counters_golden() {
    let cases = serve_suite();
    let mixed = cases
        .iter()
        .find(|c| c.name == "serve_mixed_1shard")
        .expect("suite contains the mixed-traffic case");
    let expected = ServeStats {
        queries: 96,
        solves: 15,
        cache_hits: 44,
        warm_seeded: 11,
        coalesced: 0,
        shed: 0,
        expired_in_queue: 0,
        errors: 6,
        evictions: 0,
    };
    assert_eq!(mixed.serve, expected);
    // Deterministic latency distribution under the fake clock: the 99th
    // percentile of per-dispatch tick counts is exact, not a tolerance.
    assert_eq!(mixed.p99_ticks, 13);
}

/// Each remaining pinned serve case isolates one discipline; pin the
/// counter that defines it so a policy regression names itself.
#[test]
fn serve_discipline_counters_golden() {
    let cases = serve_suite();
    let get = |name: &str| {
        cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("suite contains {name}"))
    };
    let batch = get("serve_batch_dedupe");
    assert_eq!(batch.serve.coalesced, 6);
    assert_eq!(batch.serve.solves, 1, "4 identical solves share one solve");
    let deadline = get("serve_deadline_expiry");
    assert_eq!(deadline.serve.expired_in_queue, 6);
    assert_eq!(
        deadline.serve.solves, 0,
        "expired jobs never reach a solver"
    );
    let churn = get("serve_cache_churn");
    assert_eq!(churn.serve.evictions, 6);
    assert_eq!(churn.serve.cache_hits, 0, "capacity 2 can't hold 4 shapes");
}

/// The committed serve section of `BENCH_solver.json` must match a fresh
/// run of the suite exactly, counters and latency alike.
#[test]
fn committed_baseline_matches_fresh_serve_suite() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json");
    let text = std::fs::read_to_string(path).expect("BENCH_solver.json is committed");
    let (_, serve_baseline) =
        hslb_bench::serve_perf::baseline_from_json(&text).expect("baseline parses");
    assert_eq!(
        serve_baseline,
        serve_suite(),
        "serve baseline is stale; rerun hslb-perf"
    );
}
